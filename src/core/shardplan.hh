/**
 * @file
 * The unit of distributed scale-out: a shard plan.
 *
 * A ShardPlan captures everything a run of the experiment catalog
 * needs to be reproduced elsewhere -- the experiment names and every
 * ExperimentOptions field that steers statistics -- plus the number
 * of round-robin slices the evaluation trace sets are carved into.
 * It is the schedulable form of what `penelope_bench --shard i/N`
 * used to assemble ad hoc from CLI flags:
 *
 *  - the bench driver builds a plan from its parsed options and
 *    derives per-slice ExperimentOptions through sliceOptions();
 *  - the networked coordinator (src/net/coordinator.hh) sends the
 *    encoded plan to every worker inside each slice assignment, so
 *    workers never depend on matching CLI flags;
 *  - runPlanSlice() is the worker-side executor: it runs every
 *    experiment of the plan restricted to one slice, with stdout
 *    discarded (a slice's rendering is partial; only its cache
 *    entries matter) and the per-trace results captured in a
 *    ResultCache ready for exportToBytes().
 *
 * Execution-only knobs (jobs, pool, cache) are deliberately not
 * part of a plan: they differ per machine and never change any
 * statistic.
 */

#ifndef PENELOPE_CORE_SHARDPLAN_HH
#define PENELOPE_CORE_SHARDPLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "core/resultcache.hh"

namespace penelope {

class ThreadPool;

/** A reproducible experiment run carved into shard slices. */
struct ShardPlan
{
    /** Experiment names, in run order. */
    std::vector<std::string> experiments;

    /** Round-robin slices the evaluation trace sets are carved
     *  into (the N of `--shard i/N`). */
    unsigned sliceCount = 1;

    // Statistic-steering option fields (see ExperimentOptions).
    unsigned traceStride = 16;
    std::uint64_t uopsPerTrace = 40'000;
    std::uint64_t cacheUops = 40'000;
    std::uint64_t adderOperandSamples = 2'000;
    unsigned profilingTraces = 100;
    double mechanismTimeScale = 0.05;

    bool operator==(const ShardPlan &) const = default;

    /** Capture a plan from parsed bench options. */
    static ShardPlan fromOptions(std::vector<std::string> names,
                                 const ExperimentOptions &options,
                                 unsigned slice_count);

    /**
     * ExperimentOptions for one slice of this plan.  Execution
     * knobs (jobs, pool, cache) are left at their defaults for the
     * caller to fill in.
     */
    ExperimentOptions sliceOptions(unsigned slice_index) const;

    /** Versioned wire/file codec (see serialize.hh conventions).
     *  decode() validates every field and returns false on any
     *  inconsistency, leaving *this unspecified. */
    void encode(ByteWriter &w) const;
    bool decode(ByteReader &r);
};

/**
 * Run one slice of @p plan: every experiment, restricted to the
 * slice_index-th round-robin slice, stdout discarded, per-trace
 * results captured in @p cache.  Returns false (running nothing)
 * when the plan is invalid for this binary's registry -- an unknown
 * experiment name or an out-of-range slice.
 */
bool runPlanSlice(const WorkloadSet &workload,
                  const ShardPlan &plan, unsigned slice_index,
                  unsigned jobs, ThreadPool *pool,
                  ResultCache &cache);

} // namespace penelope

#endif // PENELOPE_CORE_SHARDPLAN_HH
