/**
 * @file
 * Registry of the paper's figure/table experiments.
 *
 * Each experiment registers a stable name, a one-line description
 * and a runner; the `penelope_bench` multiplexer, the examples and
 * the integration tests all dispatch through here instead of
 * growing a new binary per experiment.  Adding an experiment is a
 * ~20-line registration in catalog.cc.
 */

#ifndef PENELOPE_CORE_REGISTRY_HH
#define PENELOPE_CORE_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace penelope {

/** Everything a registered runner gets to work with. */
struct ExperimentContext
{
    const WorkloadSet &workload;
    ExperimentOptions options;
    std::ostream &out;
};

/** One registered experiment. */
struct Experiment
{
    std::string name;        ///< CLI name, e.g. "fig5"
    std::string title;       ///< paper artifact, e.g. "Figure 5"
    std::string description; ///< one line for --list
    std::function<void(const ExperimentContext &)> run;
};

/** Name-keyed experiment catalog (registration order preserved). */
class ExperimentRegistry
{
  public:
    /** The process-wide registry. */
    static ExperimentRegistry &instance();

    /** Register an experiment; the name must be unique. */
    void add(Experiment experiment);

    /** Look up by name; nullptr when unknown. */
    const Experiment *find(const std::string &name) const;

    /** All experiments in registration order. */
    const std::vector<Experiment> &experiments() const
    {
        return experiments_;
    }

  private:
    std::vector<Experiment> experiments_;
};

/**
 * Register the built-in figure/table experiments (idempotent).
 * Explicit rather than static-initializer registration so the
 * catalog survives static-library linking and the caller controls
 * when registration happens.
 */
void registerBuiltinExperiments();

} // namespace penelope

#endif // PENELOPE_CORE_REGISTRY_HH
