#include "serialize.hh"

namespace penelope {

namespace {

/** Type tags (one per cacheable result type). */
enum ResultTag : std::uint8_t
{
    kTagIsvStats = 0x49,      // 'I'
    kTagBitBias = 0x42,       // 'B'
    kTagSchedStress = 0x53,   // 'S'
    kTagPipelineStats = 0x50, // 'P'
    kTagMemLoss = 0x4d,       // 'M'
    kTagOperands = 0x4f,      // 'O'
};

constexpr std::uint8_t kPayloadVersion = 1;

void
header(ByteWriter &w, ResultTag tag)
{
    w.u8(tag);
    w.u8(kPayloadVersion);
}

bool
checkHeader(ByteReader &r, ResultTag tag)
{
    if (r.u8() != tag || r.u8() != kPayloadVersion) {
        r.fail();
        return false;
    }
    return r.ok();
}

/** Upper bound on serialized vector lengths; anything larger is a
 *  corrupt length field, not a real result. */
constexpr std::uint32_t kMaxElements = 1u << 20;

} // namespace

// ----------------------------------------------------------- IsvStats

void
encodeResult(ByteWriter &w, const IsvStats &v)
{
    header(w, kTagIsvStats);
    w.u64(v.updatesApplied);
    w.u64(v.updatesDiscarded);
    w.u64(v.updatesSkipped);
}

bool
decodeResult(ByteReader &r, IsvStats &v)
{
    if (!checkHeader(r, kTagIsvStats))
        return false;
    v.updatesApplied = r.u64();
    v.updatesDiscarded = r.u64();
    v.updatesSkipped = r.u64();
    return r.ok();
}

// ----------------------------------------------------- BitBiasTracker

void
encodeResult(ByteWriter &w, const BitBiasTracker &v)
{
    header(w, kTagBitBias);
    w.u32(v.width());
    w.u64(v.totalTime());
    for (unsigned bit = 0; bit < v.width(); ++bit)
        w.u64(v.zeroTime(bit));
}

bool
decodeResult(ByteReader &r, BitBiasTracker &v)
{
    if (!checkHeader(r, kTagBitBias))
        return false;
    const std::uint32_t width = r.u32();
    const std::uint64_t total = r.u64();
    if (!r.ok() || width == 0 ||
        width > MaskedTimeAccumulator::kMaxWidth) {
        r.fail();
        return false;
    }
    std::vector<std::uint64_t> zeros(width);
    for (std::uint32_t bit = 0; bit < width; ++bit) {
        zeros[bit] = r.u64();
        if (zeros[bit] > total) {
            r.fail();
            return false;
        }
    }
    if (!r.ok())
        return false;
    v = BitBiasTracker::fromTimes(width, zeros.data(), total);
    return true;
}

// ---------------------------------------------------- SchedulerStress

void
encodeResult(ByteWriter &w, const SchedulerStress &v)
{
    header(w, kTagSchedStress);
    w.u32(v.numEntries);
    w.u64(v.cycles);
    w.f64(v.busyIntegral);
    w.u32(static_cast<std::uint32_t>(v.totalBias.size()));
    for (std::size_t f = 0; f < v.totalBias.size(); ++f) {
        encodeResult(w, v.totalBias[f]);
        encodeResult(w, v.busyBias[f]);
        w.u64(v.fieldUseTime[f]);
    }
}

bool
decodeResult(ByteReader &r, SchedulerStress &v)
{
    if (!checkHeader(r, kTagSchedStress))
        return false;
    SchedulerStress s;
    s.numEntries = r.u32();
    s.cycles = r.u64();
    s.busyIntegral = r.f64();
    const std::uint32_t fields = r.u32();
    if (!r.ok() || fields > 256) {
        r.fail();
        return false;
    }
    s.totalBias.reserve(fields);
    s.busyBias.reserve(fields);
    s.fieldUseTime.reserve(fields);
    for (std::uint32_t f = 0; f < fields; ++f) {
        BitBiasTracker total(1);
        BitBiasTracker busy(1);
        if (!decodeResult(r, total) || !decodeResult(r, busy))
            return false;
        if (total.width() != busy.width()) {
            r.fail();
            return false;
        }
        s.totalBias.push_back(std::move(total));
        s.busyBias.push_back(std::move(busy));
        s.fieldUseTime.push_back(r.u64());
    }
    if (!r.ok())
        return false;
    v = std::move(s);
    return true;
}

// ------------------------------------------------------ PipelineStats

void
encodeResult(ByteWriter &w, const PipelineStats &v)
{
    header(w, kTagPipelineStats);
    w.u64(v.cycles);
    w.u64(v.uops);
    w.f64(v.cpi);
    for (double u : v.adderUtilization)
        w.f64(u);
    w.f64(v.intRfOccupancy);
    w.f64(v.fpRfOccupancy);
    w.f64(v.schedOccupancy);
    w.f64(v.intRfPortFree);
    w.f64(v.fpRfPortFree);
    w.f64(v.schedPortFree);
    w.u64(v.dl0Hits);
    w.u64(v.dl0Misses);
    w.u64(v.dtlbMisses);
    for (double m : v.mruHitFraction)
        w.f64(m);
}

bool
decodeResult(ByteReader &r, PipelineStats &v)
{
    if (!checkHeader(r, kTagPipelineStats))
        return false;
    PipelineStats s;
    s.cycles = r.u64();
    s.uops = r.u64();
    s.cpi = r.f64();
    for (double &u : s.adderUtilization)
        u = r.f64();
    s.intRfOccupancy = r.f64();
    s.fpRfOccupancy = r.f64();
    s.schedOccupancy = r.f64();
    s.intRfPortFree = r.f64();
    s.fpRfPortFree = r.f64();
    s.schedPortFree = r.f64();
    s.dl0Hits = r.u64();
    s.dl0Misses = r.u64();
    s.dtlbMisses = r.u64();
    for (double &m : s.mruHitFraction)
        m = r.f64();
    if (!r.ok())
        return false;
    v = s;
    return true;
}

// ------------------------------------------------------ MemLossSample

void
encodeResult(ByteWriter &w, const MemLossSample &v)
{
    header(w, kTagMemLoss);
    w.f64(v.loss);
    w.f64(v.normalizedCycles);
    w.f64(v.dl0InvertRatio);
    w.f64(v.dtlbInvertRatio);
}

bool
decodeResult(ByteReader &r, MemLossSample &v)
{
    if (!checkHeader(r, kTagMemLoss))
        return false;
    MemLossSample s;
    s.loss = r.f64();
    s.normalizedCycles = r.f64();
    s.dl0InvertRatio = r.f64();
    s.dtlbInvertRatio = r.f64();
    if (!r.ok())
        return false;
    v = s;
    return true;
}

// ---------------------------------------------------- OperandSample[]

void
encodeResult(ByteWriter &w, const std::vector<OperandSample> &v)
{
    header(w, kTagOperands);
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const OperandSample &s : v) {
        w.u32(s.a);
        w.u32(s.b);
        w.u8(s.cin ? 1 : 0);
    }
}

bool
decodeResult(ByteReader &r, std::vector<OperandSample> &v)
{
    if (!checkHeader(r, kTagOperands))
        return false;
    const std::uint32_t count = r.u32();
    if (!r.ok() || count > kMaxElements) {
        r.fail();
        return false;
    }
    std::vector<OperandSample> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        OperandSample s;
        s.a = r.u32();
        s.b = r.u32();
        const std::uint8_t cin = r.u8();
        if (cin > 1) {
            r.fail();
            return false;
        }
        s.cin = cin != 0;
        out.push_back(s);
    }
    if (!r.ok())
        return false;
    v = std::move(out);
    return true;
}

} // namespace penelope
