#include "shardplan.hh"

#include <ostream>

#include "core/registry.hh"

namespace penelope {

namespace {

// Wire codec tag + version (serialize.hh conventions).
constexpr std::uint8_t kShardPlanTag = 0x50;
constexpr std::uint8_t kShardPlanVersion = 1;

// Decode-side sanity bounds.  The workload has 531 traces, the
// catalog has ~a dozen experiments; anything far outside is a
// corrupt or hostile plan, not a configuration.
constexpr std::uint64_t kMaxExperiments = 64;
constexpr std::uint64_t kMaxNameLength = 64;
constexpr std::uint64_t kMaxSlices = 531;
constexpr std::uint64_t kMaxStride = 531;
constexpr std::uint64_t kMaxUops = 1'000'000'000;
constexpr std::uint64_t kMaxOperandSamples = 100'000'000;
constexpr std::uint64_t kMaxProfilingTraces = 531;

} // namespace

ShardPlan
ShardPlan::fromOptions(std::vector<std::string> names,
                       const ExperimentOptions &options,
                       unsigned slice_count)
{
    ShardPlan plan;
    plan.experiments = std::move(names);
    plan.sliceCount = slice_count ? slice_count : 1;
    plan.traceStride = options.traceStride;
    plan.uopsPerTrace = options.uopsPerTrace;
    plan.cacheUops = options.cacheUops;
    plan.adderOperandSamples = options.adderOperandSamples;
    plan.profilingTraces = options.profilingTraces;
    plan.mechanismTimeScale = options.mechanismTimeScale;
    return plan;
}

ExperimentOptions
ShardPlan::sliceOptions(unsigned slice_index) const
{
    ExperimentOptions options;
    options.traceStride = traceStride;
    options.uopsPerTrace =
        static_cast<std::size_t>(uopsPerTrace);
    options.cacheUops = static_cast<std::size_t>(cacheUops);
    options.adderOperandSamples =
        static_cast<std::size_t>(adderOperandSamples);
    options.profilingTraces = profilingTraces;
    options.mechanismTimeScale = mechanismTimeScale;
    options.shardIndex = slice_index;
    options.shardCount = sliceCount;
    return options;
}

void
ShardPlan::encode(ByteWriter &w) const
{
    w.u8(kShardPlanTag);
    w.u8(kShardPlanVersion);
    w.u32(static_cast<std::uint32_t>(experiments.size()));
    for (const std::string &name : experiments) {
        w.u32(static_cast<std::uint32_t>(name.size()));
        w.bytes(name.data(), name.size());
    }
    w.u32(sliceCount);
    w.u32(traceStride);
    w.u64(uopsPerTrace);
    w.u64(cacheUops);
    w.u64(adderOperandSamples);
    w.u32(profilingTraces);
    w.f64(mechanismTimeScale);
}

bool
ShardPlan::decode(ByteReader &r)
{
    if (r.u8() != kShardPlanTag ||
        r.u8() != kShardPlanVersion)
        return false;
    const std::uint32_t count = r.u32();
    if (!r.ok() || count == 0 || count > kMaxExperiments)
        return false;
    experiments.clear();
    experiments.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = r.u32();
        if (!r.ok() || len == 0 || len > kMaxNameLength)
            return false;
        const std::string_view name = r.bytesView(len);
        if (!r.ok())
            return false;
        experiments.emplace_back(name);
    }
    sliceCount = r.u32();
    traceStride = r.u32();
    uopsPerTrace = r.u64();
    cacheUops = r.u64();
    adderOperandSamples = r.u64();
    profilingTraces = r.u32();
    mechanismTimeScale = r.f64();
    if (!r.ok())
        return false;
    if (sliceCount == 0 || sliceCount > kMaxSlices ||
        traceStride == 0 || traceStride > kMaxStride ||
        uopsPerTrace == 0 || uopsPerTrace > kMaxUops ||
        cacheUops == 0 || cacheUops > kMaxUops ||
        adderOperandSamples > kMaxOperandSamples ||
        profilingTraces == 0 ||
        profilingTraces > kMaxProfilingTraces)
        return false;
    if (!(mechanismTimeScale > 0.0) ||
        !(mechanismTimeScale <= 1.0))
        return false;
    return true;
}

bool
runPlanSlice(const WorkloadSet &workload, const ShardPlan &plan,
             unsigned slice_index, unsigned jobs, ThreadPool *pool,
             ResultCache &cache)
{
    if (slice_index >= plan.sliceCount)
        return false;
    registerBuiltinExperiments();
    const ExperimentRegistry &registry =
        ExperimentRegistry::instance();

    // Validate the whole plan before running anything, mirroring
    // the bench driver's fail-before-run behaviour.
    std::vector<const Experiment *> experiments;
    for (const std::string &name : plan.experiments) {
        const Experiment *experiment = registry.find(name);
        if (!experiment)
            return false;
        experiments.push_back(experiment);
    }

    ExperimentOptions options = plan.sliceOptions(slice_index);
    options.jobs = jobs ? jobs : 1;
    options.pool = pool;
    options.cache = &cache;

    // A slice's rendering is partial (only its cache entries
    // matter), so the output is discarded: a null-streambuf
    // ostream swallows every write.
    std::ostream null_out(nullptr);
    for (const Experiment *experiment : experiments)
        experiment->run({workload, options, null_out});
    return true;
}

} // namespace penelope
