/**
 * @file
 * Surrogate-triaged candidate sweeps: the integration layer between
 * the fitted duty -> degradation predictor (nbti/surrogate.hh) and
 * the exact adder aging engine (adder/analysis.hh).
 *
 * A *candidate* is a set of adversarial trace parameters
 * (AttackConfig); its exact degradation is measured by generating
 * the candidate's operand stream and replaying it through the
 * batched netlist engine.  A sweep over N candidates therefore
 * costs N exact replays -- unless the surrogate prunes it: score
 * every candidate from a cheap 64-sample feature prefix, then run
 * the exact engine only on the predicted top-K plus a seeded audit
 * sample.
 *
 * Contract (shared with the rest of the repo):
 *  - every CandidateEval the callers print comes from the exact
 *    engine; the surrogate only selects indices;
 *  - all exact evaluations flow through Engine::mapCached under the
 *    content-addressed "attack-candidate" domain, so pruned,
 *    exhaustive and repeated sweeps share warm entries;
 *  - with triage disabled (or an audit fraction of 1.0) the sweep
 *    evaluates every candidate and is byte-identical to the
 *    pre-surrogate behaviour -- same draws, same merges, same keys.
 */

#ifndef PENELOPE_CORE_SURROGATE_SWEEP_HH
#define PENELOPE_CORE_SURROGATE_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adder/analysis.hh"
#include "core/engine.hh"
#include "nbti/surrogate.hh"
#include "trace/attack.hh"

namespace penelope {

/** Exact engine verdict on one candidate stream. */
struct CandidateEval
{
    /** Mean per-device guardband -- the search objective. */
    double score = 0.0;
    /** Saturated worst-case guardband. */
    double guardband = 0.0;
    double wideFullyStressed = 0.0;
    double narrowFullyStressed = 0.0;
};

void encodeResult(ByteWriter &w, const CandidateEval &v);
bool decodeResult(ByteReader &r, CandidateEval &v);

/** Number of operand samples in the surrogate's feature prefix
 *  (one transpose batch). */
constexpr std::size_t kSurrogateFeatureSamples = 64;

/** Operand stream of a candidate: the first @p count adder
 *  operations of its adversarial uop stream. */
std::vector<OperandSample>
candidateOperands(const AttackConfig &attack, std::size_t count);

/** Surrogate feature vector of a candidate: per-input-bit zero
 *  duties of the 64-sample stream prefix. */
std::vector<double>
candidateFeatures(const AttackConfig &attack, unsigned width);

/** Content hash of one exact candidate evaluation.  Covers the
 *  trace parameters that shape the operand stream, the sample
 *  count and the adder topology -- everything that determines the
 *  replay's result. */
Hash128
attackCandidateKey(const Adder &adder, const AttackConfig &attack,
                   std::size_t exact_samples);

/** Exact evaluation of one candidate: replay @p exact_samples
 *  operands through the batched netlist engine and summarise. */
CandidateEval
evaluateCandidateExact(const AdderAgingAnalysis &analysis,
                       const AttackConfig &attack,
                       std::size_t exact_samples);

/** Fresh random candidate from the search stream @p rng. */
AttackConfig randomAttackCandidate(Rng &rng);

/** Mutated copy of @p base: a handful of seeded bit flips and
 *  parameter nudges on the trace knobs the adversary controls. */
AttackConfig mutateAttackCandidate(const AttackConfig &base,
                                   Rng &rng);

/** Sweep sizing and triage knobs. */
struct CandidateSweepConfig
{
    /** False = exhaustive: every candidate is evaluated exactly
     *  and the surrogate is never consulted. */
    bool triage = true;
    TriageConfig triageConfig;
    /** Operand samples per exact evaluation. */
    std::size_t exactSamples = 2048;
};

/** Outcome of one sweep: exact verdicts for the evaluated subset. */
struct CandidateSweepResult
{
    /** Ascending candidate indices the exact engine ran. */
    std::vector<std::size_t> evaluated;
    /** Exact verdicts, parallel to `evaluated`. */
    std::vector<CandidateEval> evals;
    /** Candidate index of the best exact score (ties towards the
     *  lower index). */
    std::size_t bestIndex = 0;
    CandidateEval best;
    TriageStats stats;
};

/**
 * Sweep @p candidates for the highest exact degradation score.
 * With triage on, @p fit scores every candidate from its feature
 * prefix and only the predicted top-K plus the audit sample pay
 * for exact evaluation; with triage off (or @p fit null) every
 * candidate is evaluated exactly.  Exact runs go through
 * @p engine.mapCached under the "attack-candidate" domain.
 */
CandidateSweepResult
sweepAttackCandidates(const AdderAgingAnalysis &analysis,
                      const std::vector<AttackConfig> &candidates,
                      const SurrogateFit *fit,
                      const CandidateSweepConfig &config,
                      const Engine &engine, ResultCache *cache);

/**
 * Fit the surrogate for @p analysis' adder: draw @p count training
 * candidates from the fit stream (mixSeed(fit_config.seed, 1e9+i),
 * disjoint from every search stream), evaluate them exactly
 * (cached) and fit on their feature/score pairs.  The exact
 * evaluations are accounted in @p stats.trainEvaluated.
 */
SurrogateFit
trainAttackSurrogate(const AdderAgingAnalysis &analysis,
                     std::size_t count,
                     const SurrogateFitConfig &fit_config,
                     std::size_t exact_samples, const Engine &engine,
                     ResultCache *cache, TriageStats &stats);

} // namespace penelope

#endif // PENELOPE_CORE_SURROGATE_SWEEP_HH
