/**
 * @file
 * Adder aging analysis: the Figure 4 / Figure 5 experiments.
 *
 * Pipeline: (1) age the adder under operand samples drawn from the
 * workload ("real inputs"), (2) age it under each synthetic input,
 * (3) sweep all synthetic input pairs for the fraction of narrow
 * PMOS left fully stressed (Figure 4), (4) combine real and
 * synthetic duty cycles at a given adder utilisation and convert to
 * a guardband (Figure 5).
 */

#ifndef PENELOPE_ADDER_ANALYSIS_HH
#define PENELOPE_ADDER_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "circuit/aging.hh"
#include "idle_inputs.hh"
#include "trace/generator.hh"

namespace penelope {

/** One sampled (a, b, cin) adder operation. */
struct OperandSample
{
    std::uint32_t a;
    std::uint32_t b;
    bool cin;
};

/**
 * Extract adder operand samples from a uop stream: IntAlu ops
 * contribute their source operands (subtracts appear as inverted
 * second operand with carry-in 1, which keeps the carry-in "0" more
 * than 90% of the time as the paper observes); loads and stores
 * contribute base + displacement address generations.
 */
std::vector<OperandSample>
collectAdderOperands(TraceGenerator &gen, std::size_t count);

/** Result of the Figure-4 pair sweep for one pair. */
struct PairSweepEntry
{
    InputPair pair;
    /** Narrow PMOS at 100% zero-signal probability / all PMOS. */
    double narrowFullyStressedFraction;
};

/**
 * Aging analysis harness bound to one adder topology.
 */
class AdderAgingAnalysis
{
  public:
    AdderAgingAnalysis(const Adder &adder,
                       const GuardbandModel &model);

    /** Per-device zero probability under one synthetic input. */
    std::vector<double> zeroProbsForInput(unsigned index) const;

    /** Per-device zero probability under a round-robin pair
     *  (each value is 0, 0.5 or 1). */
    std::vector<double> zeroProbsForPair(const InputPair &pair) const;

    /**
     * Per-device zero probability under a round-robin rotation of
     * arbitrary synthetic inputs (one lane each, evaluated in a
     * single batched netlist pass).  zeroProbsForInput/-Pair are
     * the one- and two-element forms.
     */
    std::vector<double>
    zeroProbsForInputs(const std::vector<unsigned> &indices) const;

    /** Per-device zero probability under real operand samples
     *  (batched 64 samples per netlist pass). */
    std::vector<double>
    zeroProbsForOperands(const std::vector<OperandSample> &ops) const;

    /** Figure 4: all 28 pairs with their stressed-narrow fraction. */
    std::vector<PairSweepEntry> sweepPairs() const;

    /** Pair minimising the Figure-4 metric (ties: first in order,
     *  which matches the paper's 1+8 choice). */
    InputPair bestPair() const;

    /**
     * Figure 5: required guardband when real inputs are applied
     * @p utilization of the time and the pair's synthetic inputs the
     * rest.  @p real_probs comes from zeroProbsForOperands().
     * Uses per-device mixing: p = u * p_real + (1-u) * p_pair.
     */
    double scenarioGuardband(const std::vector<double> &real_probs,
                             double utilization,
                             const InputPair &pair) const;

    /** Guardband with real inputs held during idle periods too
     *  (the unprotected baseline of Figure 5). */
    double
    baselineGuardband(const std::vector<double> &real_probs) const;

    /** Summary for an arbitrary per-device probability vector. */
    AgingSummary
    summarize(const std::vector<double> &zero_probs) const;

    const Adder &adder() const { return adder_; }

  private:
    const Adder &adder_;
    GuardbandModel model_;
};

} // namespace penelope

#endif // PENELOPE_ADDER_ANALYSIS_HH
