/**
 * @file
 * Adder aging analysis: the Figure 4 / Figure 5 experiments.
 *
 * Pipeline: (1) age the adder under operand samples drawn from the
 * workload ("real inputs"), (2) age it under each synthetic input,
 * (3) sweep all synthetic input pairs for the fraction of narrow
 * PMOS left fully stressed (Figure 4), (4) combine real and
 * synthetic duty cycles at a given adder utilisation and convert to
 * a guardband (Figure 5).
 */

#ifndef PENELOPE_ADDER_ANALYSIS_HH
#define PENELOPE_ADDER_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "circuit/aging.hh"
#include "common/rng.hh"
#include "idle_inputs.hh"
#include "trace/generator.hh"

namespace penelope {

/** One sampled (a, b, cin) adder operation. */
struct OperandSample
{
    std::uint32_t a;
    std::uint32_t b;
    bool cin;
};

/**
 * Extract adder operand samples from a uop stream: IntAlu ops
 * contribute their source operands (subtracts appear as inverted
 * second operand with carry-in 1, which keeps the carry-in "0" more
 * than 90% of the time as the paper observes); loads and stores
 * contribute base + displacement address generations.
 */
std::vector<OperandSample>
collectAdderOperands(TraceGenerator &gen, std::size_t count);

/**
 * Generator-generic form of collectAdderOperands(): any source with
 * a `Uop next()` (the workload TraceGenerator, the adversarial
 * AttackTraceGenerator) feeds the same extraction -- same bounded
 * scan, same seeded subtract conversion -- so a candidate trace
 * configuration maps to one deterministic operand stream.
 */
template <class Gen>
std::vector<OperandSample>
collectAdderOperandsFrom(Gen &gen, std::size_t count);

/**
 * Per-input-bit zero-duty features of an operand stream: the zero
 * probability of every a-bit and b-bit plus the carry-in, in that
 * order (2 * width + 1 values).  This is the surrogate's feature
 * vector.  Extraction is batch-wise: 64 samples per pass through
 * transpose64x64 into BitBiasTracker::observeBatch, no scalar
 * per-sample loops, so the cost per candidate is a small constant
 * times the sample count / 64.
 */
std::vector<double>
operandDutyFeatures(const std::vector<OperandSample> &ops,
                    unsigned width = 32);

/** Feature count of operandDutyFeatures() for @p width. */
constexpr unsigned
operandFeatureCount(unsigned width)
{
    return 2 * width + 1;
}

/** Result of the Figure-4 pair sweep for one pair. */
struct PairSweepEntry
{
    InputPair pair;
    /** Narrow PMOS at 100% zero-signal probability / all PMOS. */
    double narrowFullyStressedFraction;
};

/**
 * Aging analysis harness bound to one adder topology.
 */
class AdderAgingAnalysis
{
  public:
    AdderAgingAnalysis(const Adder &adder,
                       const GuardbandModel &model);

    /** Per-device zero probability under one synthetic input. */
    std::vector<double> zeroProbsForInput(unsigned index) const;

    /** Per-device zero probability under a round-robin pair
     *  (each value is 0, 0.5 or 1). */
    std::vector<double> zeroProbsForPair(const InputPair &pair) const;

    /**
     * Per-device zero probability under a round-robin rotation of
     * arbitrary synthetic inputs (one lane each, evaluated in a
     * single batched netlist pass).  zeroProbsForInput/-Pair are
     * the one- and two-element forms.
     */
    std::vector<double>
    zeroProbsForInputs(const std::vector<unsigned> &indices) const;

    /** Per-device zero probability under real operand samples
     *  (batched 64 samples per netlist pass). */
    std::vector<double>
    zeroProbsForOperands(const std::vector<OperandSample> &ops) const;

    /** Figure 4: all 28 pairs with their stressed-narrow fraction. */
    std::vector<PairSweepEntry> sweepPairs() const;

    /** Pair minimising the Figure-4 metric (ties: first in order,
     *  which matches the paper's 1+8 choice). */
    InputPair bestPair() const;

    /**
     * Figure 5: required guardband when real inputs are applied
     * @p utilization of the time and the pair's synthetic inputs the
     * rest.  @p real_probs comes from zeroProbsForOperands().
     * Uses per-device mixing: p = u * p_real + (1-u) * p_pair.
     */
    double scenarioGuardband(const std::vector<double> &real_probs,
                             double utilization,
                             const InputPair &pair) const;

    /** Guardband with real inputs held during idle periods too
     *  (the unprotected baseline of Figure 5). */
    double
    baselineGuardband(const std::vector<double> &real_probs) const;

    /**
     * Mean per-device guardband: the average of
     * guardbandForZeroProb over every PMOS device (width-aware).
     * Monotone in every per-device duty, so unlike the worst-case
     * summary -- which saturates once any narrow device is pinned
     * -- it discriminates between streams that pin many devices
     * and streams that pin few.  This is the degradation score the
     * surrogate is trained on and the attack search maximises.
     */
    double
    meanDeviceGuardband(const std::vector<double> &zero_probs) const;

    /** Fraction of wide (carry-merge) PMOS at >= 99.99% zero-signal
     *  probability -- the metric of the constant-operand wearout
     *  attack (0 when the netlist has no wide devices). */
    double wideFullyStressedFraction(
        const std::vector<double> &zero_probs) const;

    /** Summary for an arbitrary per-device probability vector. */
    AgingSummary
    summarize(const std::vector<double> &zero_probs) const;

    const Adder &adder() const { return adder_; }

  private:
    const Adder &adder_;
    GuardbandModel model_;
};

template <class Gen>
std::vector<OperandSample>
collectAdderOperandsFrom(Gen &gen, std::size_t count)
{
    std::vector<OperandSample> out;
    out.reserve(count);
    // Bounded scan: some streams are branch/FP heavy, so cap the
    // number of uops inspected to avoid unbounded loops.
    const std::size_t max_uops = count * 16 + 1024;
    Rng rng(0xadde7);
    for (std::size_t scanned = 0;
         out.size() < count && scanned < max_uops; ++scanned) {
        const Uop uop = gen.next();
        OperandSample s{};
        switch (uop.cls) {
          case UopClass::IntAlu: {
            const std::uint32_t a =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t b = static_cast<std::uint32_t>(
                uop.hasImm ? uop.imm : uop.srcVal2);
            // ~8% of ALU adds are subtracts: A + ~B + 1.
            if (rng.nextBool(0.08)) {
                s = {a, ~b, true};
            } else {
                s = {a, b, false};
            }
            break;
          }
          case UopClass::Load:
          case UopClass::Store: {
            // AGU: base + displacement.
            const std::uint32_t base =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t disp = static_cast<std::uint32_t>(
                uop.addr - uop.srcVal1);
            s = {base, disp, false};
            break;
          }
          default:
            continue;
        }
        out.push_back(s);
    }
    return out;
}

} // namespace penelope

#endif // PENELOPE_ADDER_ANALYSIS_HH
