/**
 * @file
 * Common interface for gate-level adders.
 *
 * The Penelope case study uses a 32-bit Ladner-Fischer adder
 * (Section 4.3); ripple-carry and Kogge-Stone implementations are
 * provided as ablation baselines with identical interfaces so the
 * idle-input methodology can be evaluated on different topologies.
 */

#ifndef PENELOPE_ADDER_ADDER_HH
#define PENELOPE_ADDER_ADDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hh"

namespace penelope {

/**
 * Base class owning the netlist and the input/output pin maps.
 *
 * Input creation order (relevant for input vectors): a[0..w-1],
 * b[0..w-1], cin.
 */
class Adder
{
  public:
    virtual ~Adder() = default;

    unsigned width() const { return width_; }

    Netlist &netlist() { return netlist_; }
    const Netlist &netlist() const { return netlist_; }

    /** Topology name for reports. */
    virtual const char *name() const = 0;

    /** Pack (a, b, cin) into a primary-input vector. */
    std::vector<bool> makeInputVector(std::uint64_t a,
                                      std::uint64_t b,
                                      bool cin) const;

    /** makeInputVector into a caller-owned buffer (no per-call
     *  allocation; @p in is resized once and reused). */
    void fillInputVector(std::vector<bool> &in, std::uint64_t a,
                         std::uint64_t b, bool cin) const;

    /**
     * Functionally evaluate the netlist.
     * @return sum (width bits); carry-out via @p cout if non-null.
     */
    std::uint64_t evaluate(std::uint64_t a, std::uint64_t b, bool cin,
                           bool *cout = nullptr) const;

    /**
     * Evaluate 64 operand triples in one netlist pass.  @p a and
     * @p b each hold 64 operand values (lane v uses a[v], b[v] and
     * bit v of @p cin_mask); pad unused lanes with zeros.  The
     * operands are bit-transposed into per-input lane words and run
     * through Netlist::evaluateBatch; @p net_words receives the
     * compiled stream's physical word array (resolve a net with
     * Netlist::laneWord), ready for
     * PmosAgingTracker::observeBatch or batchSums().
     */
    void evaluateBatch(const std::uint64_t a[64],
                       const std::uint64_t b[64],
                       std::uint64_t cin_mask,
                       std::vector<std::uint64_t> &net_words) const;

    /**
     * Multi-word form of evaluateBatch(): evaluate 64 * @p net_w
     * operand triples in one netlist pass.  @p a and @p b hold
     * net_w * 64 operand values (word w covers lanes [w * 64,
     * w * 64 + 64), lane l of word w uses bit l of
     * @p cin_masks[w]); @p net_words receives net_w interleaved
     * lane words per net, ready for
     * PmosAgingTracker::observeBatchWide.  Word w of every net is
     * bit-for-bit what evaluateBatch() over that word's operands
     * would produce.  @p net_w must be 1, 2, 4 or 8
     * (Netlist::preferredBatchWords() picks the fastest).
     */
    void evaluateBatchWide(const std::uint64_t *a,
                           const std::uint64_t *b,
                           const std::uint64_t *cin_masks,
                           unsigned net_w,
                           std::vector<std::uint64_t> &net_words)
        const;

    /**
     * Extract the 64 per-lane sums (and the carry-out lane mask)
     * from a net-word array produced by evaluateBatch().
     */
    void batchSums(const std::vector<std::uint64_t> &net_words,
                   std::uint64_t sums[64],
                   std::uint64_t *cout_mask = nullptr) const;

    const std::vector<SignalId> &sumSignals() const { return sum_; }
    SignalId coutSignal() const { return cout_; }

  protected:
    explicit Adder(unsigned width);

    /** Create the a/b/cin primary inputs (call first in builders). */
    void buildInputs();

    unsigned width_;
    Netlist netlist_;
    std::vector<SignalId> a_;
    std::vector<SignalId> b_;
    SignalId cin_ = invalidSignal;
    std::vector<SignalId> sum_;
    SignalId cout_ = invalidSignal;

    // Evaluation scratch lives in thread_local buffers inside the
    // eval methods (not here): a const Adder shared across the
    // engine's worker threads must evaluate concurrently without
    // racing on scratch state.
};

/** 32-bit (or any width) Ladner-Fischer parallel-prefix adder. */
class LadnerFischerAdder : public Adder
{
  public:
    explicit LadnerFischerAdder(unsigned width = 32);
    const char *name() const override { return "ladner-fischer"; }
};

/** Ripple-carry adder (area-minimal baseline). */
class RippleCarryAdder : public Adder
{
  public:
    explicit RippleCarryAdder(unsigned width = 32);
    const char *name() const override { return "ripple-carry"; }
};

/** Kogge-Stone parallel-prefix adder (fanout-minimal baseline). */
class KoggeStoneAdder : public Adder
{
  public:
    explicit KoggeStoneAdder(unsigned width = 32);
    const char *name() const override { return "kogge-stone"; }
};

} // namespace penelope

#endif // PENELOPE_ADDER_ADDER_HH
