/**
 * @file
 * Synthetic idle-input methodology for combinational blocks
 * (Section 3.1 / 4.3).
 *
 * During idle cycles the adder's input latches are loaded with one
 * of eight synthetic inputs <InputA, InputB, CarryIn> (each operand
 * all-zeros or all-ones), alternated round-robin.  This module
 * defines the inputs, the 28 unordered pairs the paper sweeps in
 * Figure 4, and the round-robin injection policy.
 */

#ifndef PENELOPE_ADDER_IDLE_INPUTS_HH
#define PENELOPE_ADDER_IDLE_INPUTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "adder.hh"

namespace penelope {

/** One synthetic input: each field replicated across all bits. */
struct SyntheticInput
{
    bool inputA;
    bool inputB;
    bool carryIn;
};

/**
 * The eight synthetic inputs in the paper's numbering: input 1 is
 * <0,0,0>, input 2 is <0,0,1>, ..., input 8 is <1,1,1>
 * (<InputA, InputB, CarryIn> in ascending binary order).
 */
const std::array<SyntheticInput, 8> &syntheticInputs();

/** Input vector for synthetic input @p index (0-based: 0..7). */
std::vector<bool> syntheticVector(const Adder &adder, unsigned index);

/** syntheticVector into a caller-owned buffer (no per-call
 *  allocation; loops over inputs reuse one vector). */
void syntheticVector(const Adder &adder, unsigned index,
                     std::vector<bool> &in);

/** Unordered pair of synthetic inputs (0-based indices). */
struct InputPair
{
    unsigned first;
    unsigned second;

    bool operator==(const InputPair &o) const
    {
        return first == o.first && second == o.second;
    }
};

/** All 28 unordered pairs in Figure-4 order (1+2, 1+3, ... 7+8). */
std::vector<InputPair> allInputPairs();

/** Paper-style label, e.g.\ "1+8" (1-based numbering). */
std::string pairLabel(const InputPair &pair);

/**
 * Round-robin idle-input injector: alternates the two inputs of a
 * pair across idle periods, so in the long run each is applied half
 * of the idle time (Section 3.1).
 */
class RoundRobinInjector
{
  public:
    explicit RoundRobinInjector(InputPair pair)
        : pair_(pair), nextFirst_(true)
    {}

    /** Synthetic input index to drive during the next idle period. */
    unsigned nextIdleInput();

    InputPair pair() const { return pair_; }

  private:
    InputPair pair_;
    bool nextFirst_;
};

} // namespace penelope

#endif // PENELOPE_ADDER_IDLE_INPUTS_HH
