#include "adder.hh"

#include <algorithm>
#include <cassert>

#include "common/bitword.hh"

namespace penelope {

namespace {

/** (generate, propagate) pair for prefix networks. */
struct GP
{
    SignalId g;
    SignalId p;
};

/** AND built from upsized (wide) devices: carry-merge sizing. */
SignalId
wideAnd(Netlist &n, SignalId a, SignalId b)
{
    const SignalId t = n.addNand({a, b});
    n.markWide(t);
    const SignalId out = n.addInv(t);
    n.markWide(out);
    return out;
}

/** OR built from upsized (wide) devices. */
SignalId
wideOr(Netlist &n, SignalId a, SignalId b)
{
    const SignalId t = n.addNor({a, b});
    n.markWide(t);
    const SignalId out = n.addInv(t);
    n.markWide(out);
    return out;
}

/**
 * Prefix combine: (g2,p2) o (g1,p1), segment 2 more significant.
 * Carry-merge cells drive long wires and further tree levels, so a
 * real layout upsizes them; all their devices are wide.
 */
GP
combine(Netlist &n, const GP &hi, const GP &lo)
{
    GP out;
    out.g = wideOr(n, hi.g, wideAnd(n, hi.p, lo.g));
    out.p = wideAnd(n, hi.p, lo.p);
    return out;
}

/**
 * Ladner-Fischer divide-and-conquer: on return, pre[j] holds the
 * prefix over [lo..j] for every j in [lo, hi].  The lower half is
 * solved recursively; every upper-half prefix then combines with the
 * single lower-half result pre[mid] -- the high-fanout node that is
 * the LF signature.
 */
void
buildLadnerFischer(Netlist &n, std::vector<GP> &pre, unsigned lo,
                   unsigned hi)
{
    if (lo >= hi)
        return;
    const unsigned mid = lo + (hi - lo) / 2;
    buildLadnerFischer(n, pre, lo, mid);
    buildLadnerFischer(n, pre, mid + 1, hi);
    for (unsigned j = mid + 1; j <= hi; ++j)
        pre[j] = combine(n, pre[j], pre[mid]);
}

} // namespace

Adder::Adder(unsigned width)
    : width_(width)
{
    assert(width_ >= 1 && width_ <= 64);
}

void
Adder::buildInputs()
{
    a_.reserve(width_);
    b_.reserve(width_);
    for (unsigned i = 0; i < width_; ++i)
        a_.push_back(netlist_.addInput("a" + std::to_string(i)));
    for (unsigned i = 0; i < width_; ++i)
        b_.push_back(netlist_.addInput("b" + std::to_string(i)));
    cin_ = netlist_.addInput("cin");
}

std::vector<bool>
Adder::makeInputVector(std::uint64_t a, std::uint64_t b,
                       bool cin) const
{
    std::vector<bool> in;
    fillInputVector(in, a, b, cin);
    return in;
}

void
Adder::fillInputVector(std::vector<bool> &in, std::uint64_t a,
                       std::uint64_t b, bool cin) const
{
    in.resize(2 * width_ + 1);
    for (unsigned i = 0; i < width_; ++i) {
        in[i] = (a >> i) & 1;
        in[width_ + i] = (b >> i) & 1;
    }
    in[2 * width_] = cin;
}

void
Adder::evaluateBatch(const std::uint64_t a[64],
                     const std::uint64_t b[64],
                     std::uint64_t cin_mask,
                     std::vector<std::uint64_t> &net_words) const
{
    // Per-thread scratch: a const Adder is shared across the
    // engine's worker threads (transpose64x64 is destructive, so
    // operands are copied into the block first).
    thread_local std::vector<std::uint64_t> input_words;
    std::uint64_t block[64];
    input_words.resize(2 * width_ + 1);

    // Lane packing: transpose the 64 operand rows so word i holds
    // bit i of every operand (lane word of primary input a_i / b_i).
    std::copy(a, a + 64, block);
    transpose64x64(block);
    std::copy(block, block + width_, input_words.begin());
    std::copy(b, b + 64, block);
    transpose64x64(block);
    std::copy(block, block + width_, input_words.begin() + width_);
    input_words[2 * width_] = cin_mask;

    netlist_.evaluateBatch(input_words.data(), net_words);
}

void
Adder::evaluateBatchWide(const std::uint64_t *a,
                         const std::uint64_t *b,
                         const std::uint64_t *cin_masks,
                         unsigned net_w,
                         std::vector<std::uint64_t> &net_words) const
{
    assert(net_w == 1 || net_w == 2 || net_w == 4 || net_w == 8);
    thread_local std::vector<std::uint64_t> input_words;
    std::uint64_t block[64];
    input_words.resize((2 * width_ + 1) * net_w);

    // Per word: transpose that word's 64 operand rows, then scatter
    // into the interleaved [input * net_w + w] layout the wide
    // engine consumes.
    for (unsigned w = 0; w < net_w; ++w) {
        std::copy(a + w * 64, a + w * 64 + 64, block);
        transpose64x64(block);
        for (unsigned i = 0; i < width_; ++i)
            input_words[i * net_w + w] = block[i];
        std::copy(b + w * 64, b + w * 64 + 64, block);
        transpose64x64(block);
        for (unsigned i = 0; i < width_; ++i)
            input_words[(width_ + i) * net_w + w] = block[i];
        input_words[2 * width_ * net_w + w] = cin_masks[w];
    }

    netlist_.evaluateBatchWide(input_words.data(), net_words, net_w);
}

void
Adder::batchSums(const std::vector<std::uint64_t> &net_words,
                 std::uint64_t sums[64],
                 std::uint64_t *cout_mask) const
{
    // Sum/carry nets resolve through their NetRefs: the optimizing
    // compiler may alias them to a complemented or shared word.
    std::uint64_t block[64];
    for (unsigned i = 0; i < width_; ++i)
        block[i] = netlist_.laneWord(net_words.data(), sum_[i]);
    std::fill(block + width_, block + 64, 0);
    transpose64x64(block);
    std::copy(block, block + 64, sums);
    if (cout_mask)
        *cout_mask = netlist_.laneWord(net_words.data(), cout_);
}

std::uint64_t
Adder::evaluate(std::uint64_t a, std::uint64_t b, bool cin,
                bool *cout) const
{
    const auto in = makeInputVector(a, b, cin);
    thread_local std::vector<std::uint8_t> values;
    netlist_.evaluate(in, values);
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < width_; ++i)
        if (values[sum_[i]])
            sum |= std::uint64_t(1) << i;
    if (cout)
        *cout = values[cout_] != 0;
    return sum;
}

LadnerFischerAdder::LadnerFischerAdder(unsigned width)
    : Adder(width)
{
    buildInputs();

    // Preprocessing: per-bit propagate/generate.  Propagate uses
    // the datapath-standard transmission-gate XOR cell.
    std::vector<GP> pre(width_);
    std::vector<SignalId> p(width_);
    for (unsigned i = 0; i < width_; ++i) {
        p[i] = netlist_.addTgXor(a_[i], b_[i]);
        pre[i].p = p[i];
        pre[i].g = netlist_.addAnd(a_[i], b_[i]);
    }

    // Parallel-prefix tree over the bit generates/propagates.
    buildLadnerFischer(netlist_, pre, 0, width_ - 1);

    // Fold the carry-in: c_{i+1} = G[0..i] | (P[0..i] & cin).
    // The carry chain is wide (sized like the merge cells).
    std::vector<SignalId> carry(width_ + 1);
    carry[0] = cin_;
    for (unsigned i = 0; i < width_; ++i) {
        carry[i + 1] = wideOr(
            netlist_, pre[i].g,
            wideAnd(netlist_, pre[i].p, cin_));
    }

    // Sum: s_i = p_i XOR c_i.
    sum_.reserve(width_);
    for (unsigned i = 0; i < width_; ++i)
        sum_.push_back(netlist_.addTgXor(p[i], carry[i]));
    cout_ = carry[width_];

    netlist_.finalize();
}

RippleCarryAdder::RippleCarryAdder(unsigned width)
    : Adder(width)
{
    buildInputs();

    SignalId carry = cin_;
    sum_.reserve(width_);
    for (unsigned i = 0; i < width_; ++i) {
        const SignalId p = netlist_.addTgXor(a_[i], b_[i]);
        const SignalId g = netlist_.addAnd(a_[i], b_[i]);
        sum_.push_back(netlist_.addTgXor(p, carry));
        carry = wideOr(netlist_, g,
                       wideAnd(netlist_, p, carry));
    }
    cout_ = carry;

    netlist_.finalize();
}

KoggeStoneAdder::KoggeStoneAdder(unsigned width)
    : Adder(width)
{
    buildInputs();

    std::vector<GP> cur(width_);
    std::vector<SignalId> p(width_);
    for (unsigned i = 0; i < width_; ++i) {
        p[i] = netlist_.addTgXor(a_[i], b_[i]);
        cur[i].p = p[i];
        cur[i].g = netlist_.addAnd(a_[i], b_[i]);
    }

    for (unsigned d = 1; d < width_; d <<= 1) {
        std::vector<GP> next = cur;
        for (unsigned i = d; i < width_; ++i)
            next[i] = combine(netlist_, cur[i], cur[i - d]);
        cur = std::move(next);
    }

    std::vector<SignalId> carry(width_ + 1);
    carry[0] = cin_;
    for (unsigned i = 0; i < width_; ++i) {
        carry[i + 1] = wideOr(
            netlist_, cur[i].g,
            wideAnd(netlist_, cur[i].p, cin_));
    }

    sum_.reserve(width_);
    for (unsigned i = 0; i < width_; ++i)
        sum_.push_back(netlist_.addTgXor(p[i], carry[i]));
    cout_ = carry[width_];

    netlist_.finalize();
}

} // namespace penelope
