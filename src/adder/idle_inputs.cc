#include "idle_inputs.hh"

#include <cassert>

namespace penelope {

const std::array<SyntheticInput, 8> &
syntheticInputs()
{
    static const std::array<SyntheticInput, 8> inputs = {{
        {false, false, false}, // 1: <0,0,0>
        {false, false, true},  // 2: <0,0,1>
        {false, true, false},  // 3: <0,1,0>
        {false, true, true},   // 4: <0,1,1>
        {true, false, false},  // 5: <1,0,0>
        {true, false, true},   // 6: <1,0,1>
        {true, true, false},   // 7: <1,1,0>
        {true, true, true},    // 8: <1,1,1>
    }};
    return inputs;
}

std::vector<bool>
syntheticVector(const Adder &adder, unsigned index)
{
    std::vector<bool> in;
    syntheticVector(adder, index, in);
    return in;
}

void
syntheticVector(const Adder &adder, unsigned index,
                std::vector<bool> &in)
{
    assert(index < 8);
    const SyntheticInput &s = syntheticInputs()[index];
    const std::uint64_t ones = adder.width() >= 64
        ? ~std::uint64_t(0)
        : (std::uint64_t(1) << adder.width()) - 1;
    adder.fillInputVector(in, s.inputA ? ones : 0,
                          s.inputB ? ones : 0, s.carryIn);
}

std::vector<InputPair>
allInputPairs()
{
    std::vector<InputPair> pairs;
    for (unsigned i = 0; i < 8; ++i)
        for (unsigned j = i + 1; j < 8; ++j)
            pairs.push_back({i, j});
    return pairs;
}

std::string
pairLabel(const InputPair &pair)
{
    return std::to_string(pair.first + 1) + "+" +
        std::to_string(pair.second + 1);
}

unsigned
RoundRobinInjector::nextIdleInput()
{
    const unsigned idx = nextFirst_ ? pair_.first : pair_.second;
    nextFirst_ = !nextFirst_;
    return idx;
}

} // namespace penelope
