#include "analysis.hh"

#include <algorithm>
#include <cassert>

namespace penelope {

std::vector<OperandSample>
collectAdderOperands(TraceGenerator &gen, std::size_t count)
{
    std::vector<OperandSample> out;
    out.reserve(count);
    // Bounded scan: some suites are branch/FP heavy, so cap the
    // number of uops inspected to avoid unbounded loops.
    const std::size_t max_uops = count * 16 + 1024;
    Rng rng(0xadde7);
    for (std::size_t scanned = 0;
         out.size() < count && scanned < max_uops; ++scanned) {
        const Uop uop = gen.next();
        OperandSample s{};
        switch (uop.cls) {
          case UopClass::IntAlu: {
            const std::uint32_t a =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t b = static_cast<std::uint32_t>(
                uop.hasImm ? uop.imm : uop.srcVal2);
            // ~8% of ALU adds are subtracts: A + ~B + 1.
            if (rng.nextBool(0.08)) {
                s = {a, ~b, true};
            } else {
                s = {a, b, false};
            }
            break;
          }
          case UopClass::Load:
          case UopClass::Store: {
            // AGU: base + displacement.
            const std::uint32_t base =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t disp = static_cast<std::uint32_t>(
                uop.addr - uop.srcVal1);
            s = {base, disp, false};
            break;
          }
          default:
            continue;
        }
        out.push_back(s);
    }
    return out;
}

AdderAgingAnalysis::AdderAgingAnalysis(const Adder &adder,
                                       const GuardbandModel &model)
    : adder_(adder), model_(model)
{
}

namespace {

/** Operand triple of synthetic input @p index for @p adder. */
void
syntheticOperands(const Adder &adder, unsigned index,
                  std::uint64_t &a, std::uint64_t &b, bool &cin)
{
    assert(index < 8);
    const SyntheticInput &in = syntheticInputs()[index];
    const std::uint64_t ones = adder.width() >= 64
        ? ~std::uint64_t(0)
        : (std::uint64_t(1) << adder.width()) - 1;
    a = in.inputA ? ones : 0;
    b = in.inputB ? ones : 0;
    cin = in.carryIn;
}

/** One batched pass over all eight synthetic inputs: lane l holds
 *  the netlist under synthetic input l. */
void
evaluateSyntheticLanes(const Adder &adder,
                       std::vector<std::uint64_t> &net_words)
{
    std::uint64_t a[64] = {};
    std::uint64_t b[64] = {};
    std::uint64_t cin_mask = 0;
    for (unsigned l = 0; l < 8; ++l) {
        bool cin = false;
        syntheticOperands(adder, l, a[l], b[l], cin);
        if (cin)
            cin_mask |= std::uint64_t(1) << l;
    }
    adder.evaluateBatch(a, b, cin_mask, net_words);
}

std::vector<double>
trackerProbs(const PmosAgingTracker &tracker)
{
    std::vector<double> probs(tracker.numDevices());
    for (std::size_t i = 0; i < probs.size(); ++i)
        probs[i] = tracker.zeroProb(i);
    return probs;
}

} // namespace

std::vector<double>
AdderAgingAnalysis::zeroProbsForInput(unsigned index) const
{
    return zeroProbsForInputs({index});
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForPair(const InputPair &pair) const
{
    return zeroProbsForInputs({pair.first, pair.second});
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForInputs(
    const std::vector<unsigned> &indices) const
{
    assert(!indices.empty() && indices.size() <= 64);
    std::vector<std::uint64_t> words;
    evaluateSyntheticLanes(adder_, words);
    // Round-robin over the requested inputs: each occurrence
    // selects its synthetic lane once (a repeated index charges its
    // lane repeatedly, matching one applyInput per occurrence --
    // observeBatch per occurrence keeps the integer sums identical).
    PmosAgingTracker tracker(adder_.netlist());
    for (unsigned index : indices) {
        assert(index < 8);
        tracker.observeBatch(words.data(),
                             std::uint64_t(1) << index);
    }
    return trackerProbs(tracker);
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForOperands(
    const std::vector<OperandSample> &ops) const
{
    // Chunk by the cache-blocked wide-batch width for this netlist:
    // one op-stream pass covers net_w * 64 operand samples.
    // Padding lanes carry zero operands and are masked out of the
    // accounting, so the per-device counts -- hence the returned
    // probabilities -- are identical at every net_w.
    const unsigned net_w = adder_.netlist().blockedBatchWords();
    const std::size_t chunk = std::size_t(64) * net_w;
    PmosAgingTracker tracker(adder_.netlist());
    std::vector<std::uint64_t> words;
    std::uint64_t a[512];
    std::uint64_t b[512];
    std::uint64_t cin_masks[8];
    std::uint64_t lane_masks[8];
    for (std::size_t begin = 0; begin < ops.size(); begin += chunk) {
        const std::size_t count =
            std::min<std::size_t>(chunk, ops.size() - begin);
        std::fill(cin_masks, cin_masks + net_w, 0);
        for (std::size_t l = 0; l < count; ++l) {
            const OperandSample &op = ops[begin + l];
            a[l] = op.a;
            b[l] = op.b;
            if (op.cin)
                cin_masks[l / 64] |= std::uint64_t(1) << (l % 64);
        }
        std::fill(a + count, a + chunk, 0);
        std::fill(b + count, b + chunk, 0);
        for (unsigned w = 0; w < net_w; ++w) {
            const std::size_t word_lanes = count <= w * 64
                ? 0
                : std::min<std::size_t>(64, count - w * 64);
            lane_masks[w] = word_lanes == 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << word_lanes) - 1;
        }
        adder_.evaluateBatchWide(a, b, cin_masks, net_w, words);
        tracker.observeBatchWide(words.data(), net_w, lane_masks);
    }
    return trackerProbs(tracker);
}

std::vector<PairSweepEntry>
AdderAgingAnalysis::sweepPairs() const
{
    // One batched netlist pass covers all eight synthetic inputs;
    // each pair then reduces its two lanes.  The per-pair counts
    // (and therefore the Figure-4 fractions) are exactly those of
    // 28 independent two-input trackers.
    std::vector<std::uint64_t> words;
    evaluateSyntheticLanes(adder_, words);
    std::vector<PairSweepEntry> entries;
    PmosAgingTracker tracker(adder_.netlist());
    for (const InputPair &pair : allInputPairs()) {
        tracker.reset();
        tracker.observeBatch(
            words.data(), (std::uint64_t(1) << pair.first) |
                (std::uint64_t(1) << pair.second));
        const AgingSummary s = summarize(trackerProbs(tracker));
        entries.push_back({pair, s.narrowFullyStressedFraction});
    }
    return entries;
}

InputPair
AdderAgingAnalysis::bestPair() const
{
    const auto entries = sweepPairs();
    assert(!entries.empty());
    const auto it = std::min_element(
        entries.begin(), entries.end(),
        [](const PairSweepEntry &x, const PairSweepEntry &y) {
            return x.narrowFullyStressedFraction <
                y.narrowFullyStressedFraction;
        });
    return it->pair;
}

double
AdderAgingAnalysis::scenarioGuardband(
    const std::vector<double> &real_probs, double utilization,
    const InputPair &pair) const
{
    assert(utilization >= 0.0 && utilization <= 1.0);
    const auto pair_probs = zeroProbsForPair(pair);
    assert(pair_probs.size() == real_probs.size());
    std::vector<double> mixed(real_probs.size());
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        mixed[i] = utilization * real_probs[i] +
            (1.0 - utilization) * pair_probs[i];
    }
    return summarize(mixed).guardband;
}

double
AdderAgingAnalysis::baselineGuardband(
    const std::vector<double> &real_probs) const
{
    return summarize(real_probs).guardband;
}

AgingSummary
AdderAgingAnalysis::summarize(
    const std::vector<double> &zero_probs) const
{
    return PmosAgingTracker::summarizeZeroProbs(
        adder_.netlist(), zero_probs, model_);
}

} // namespace penelope
