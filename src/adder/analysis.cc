#include "analysis.hh"

#include <algorithm>
#include <cassert>

#include "common/bitword.hh"
#include "common/duty.hh"
#include "obs/metrics.hh"

namespace penelope {

std::vector<OperandSample>
collectAdderOperands(TraceGenerator &gen, std::size_t count)
{
    return collectAdderOperandsFrom(gen, count);
}

std::vector<double>
operandDutyFeatures(const std::vector<OperandSample> &ops,
                    unsigned width)
{
    assert(width <= 32);
    // One BitBiasTracker bit per input signal: a-bits, b-bits,
    // carry-in.  Each 64-sample chunk is transposed into the
    // lane-word layout observeBatch consumes, so the per-bit duty
    // sums cost one popcount per input bit per chunk.
    BitBiasTracker tracker(operandFeatureCount(width));
    std::vector<std::uint64_t> words(operandFeatureCount(width));
    std::uint64_t ta[64];
    std::uint64_t tb[64];
    for (std::size_t begin = 0; begin < ops.size(); begin += 64) {
        const std::size_t count =
            std::min<std::size_t>(64, ops.size() - begin);
        std::uint64_t cin_mask = 0;
        for (std::size_t l = 0; l < count; ++l) {
            const OperandSample &op = ops[begin + l];
            ta[l] = op.a;
            tb[l] = op.b;
            if (op.cin)
                cin_mask |= std::uint64_t(1) << l;
        }
        std::fill(ta + count, ta + 64, 0);
        std::fill(tb + count, tb + 64, 0);
        transpose64x64(ta);
        transpose64x64(tb);
        for (unsigned bit = 0; bit < width; ++bit) {
            words[bit] = ta[bit];
            words[width + bit] = tb[bit];
        }
        words[2 * width] = cin_mask;
        const std::uint64_t lane_mask = count == 64
            ? ~std::uint64_t(0)
            : (std::uint64_t(1) << count) - 1;
        tracker.observeBatch(words.data(), lane_mask);
    }
    return tracker.biasVector();
}

AdderAgingAnalysis::AdderAgingAnalysis(const Adder &adder,
                                       const GuardbandModel &model)
    : adder_(adder), model_(model)
{
}

namespace {

/** Operand triple of synthetic input @p index for @p adder. */
void
syntheticOperands(const Adder &adder, unsigned index,
                  std::uint64_t &a, std::uint64_t &b, bool &cin)
{
    assert(index < 8);
    const SyntheticInput &in = syntheticInputs()[index];
    const std::uint64_t ones = adder.width() >= 64
        ? ~std::uint64_t(0)
        : (std::uint64_t(1) << adder.width()) - 1;
    a = in.inputA ? ones : 0;
    b = in.inputB ? ones : 0;
    cin = in.carryIn;
}

/** One batched pass over all eight synthetic inputs: lane l holds
 *  the netlist under synthetic input l. */
void
evaluateSyntheticLanes(const Adder &adder,
                       std::vector<std::uint64_t> &net_words)
{
    std::uint64_t a[64] = {};
    std::uint64_t b[64] = {};
    std::uint64_t cin_mask = 0;
    for (unsigned l = 0; l < 8; ++l) {
        bool cin = false;
        syntheticOperands(adder, l, a[l], b[l], cin);
        if (cin)
            cin_mask |= std::uint64_t(1) << l;
    }
    adder.evaluateBatch(a, b, cin_mask, net_words);
}

std::vector<double>
trackerProbs(const PmosAgingTracker &tracker)
{
    std::vector<double> probs(tracker.numDevices());
    for (std::size_t i = 0; i < probs.size(); ++i)
        probs[i] = tracker.zeroProb(i);
    return probs;
}

} // namespace

std::vector<double>
AdderAgingAnalysis::zeroProbsForInput(unsigned index) const
{
    return zeroProbsForInputs({index});
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForPair(const InputPair &pair) const
{
    return zeroProbsForInputs({pair.first, pair.second});
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForInputs(
    const std::vector<unsigned> &indices) const
{
    assert(!indices.empty() && indices.size() <= 64);
    std::vector<std::uint64_t> words;
    evaluateSyntheticLanes(adder_, words);
    // Round-robin over the requested inputs: each occurrence
    // selects its synthetic lane once (a repeated index charges its
    // lane repeatedly, matching one applyInput per occurrence --
    // observeBatch per occurrence keeps the integer sums identical).
    PmosAgingTracker tracker(adder_.netlist());
    for (unsigned index : indices) {
        assert(index < 8);
        tracker.observeBatch(words.data(),
                             std::uint64_t(1) << index);
    }
    return trackerProbs(tracker);
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForOperands(
    const std::vector<OperandSample> &ops) const
{
    // Chunk by the cache-blocked wide-batch width for this netlist:
    // one op-stream pass covers net_w * 64 operand samples.
    // Padding lanes carry zero operands and are masked out of the
    // accounting, so the per-device counts -- hence the returned
    // probabilities -- are identical at every net_w.
    const unsigned net_w = adder_.netlist().blockedBatchWords();
    const std::size_t chunk = std::size_t(64) * net_w;
    PmosAgingTracker tracker(adder_.netlist());
    std::vector<std::uint64_t> words;
    std::uint64_t a[512];
    std::uint64_t b[512];
    std::uint64_t cin_masks[8];
    std::uint64_t lane_masks[8];
    for (std::size_t begin = 0; begin < ops.size(); begin += chunk) {
        const std::size_t count =
            std::min<std::size_t>(chunk, ops.size() - begin);
        std::fill(cin_masks, cin_masks + net_w, 0);
        for (std::size_t l = 0; l < count; ++l) {
            const OperandSample &op = ops[begin + l];
            a[l] = op.a;
            b[l] = op.b;
            if (op.cin)
                cin_masks[l / 64] |= std::uint64_t(1) << (l % 64);
        }
        std::fill(a + count, a + chunk, 0);
        std::fill(b + count, b + chunk, 0);
        for (unsigned w = 0; w < net_w; ++w) {
            const std::size_t word_lanes = count <= w * 64
                ? 0
                : std::min<std::size_t>(64, count - w * 64);
            lane_masks[w] = word_lanes == 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << word_lanes) - 1;
        }
        PENELOPE_OBS_COUNTER("netlist.lanes_used", "lanes")
            .add(count);
        adder_.evaluateBatchWide(a, b, cin_masks, net_w, words);
        tracker.observeBatchWide(words.data(), net_w, lane_masks);
    }
    return trackerProbs(tracker);
}

std::vector<PairSweepEntry>
AdderAgingAnalysis::sweepPairs() const
{
    // One batched netlist pass covers all eight synthetic inputs;
    // each pair then reduces its two lanes.  The per-pair counts
    // (and therefore the Figure-4 fractions) are exactly those of
    // 28 independent two-input trackers.
    std::vector<std::uint64_t> words;
    evaluateSyntheticLanes(adder_, words);
    std::vector<PairSweepEntry> entries;
    PmosAgingTracker tracker(adder_.netlist());
    for (const InputPair &pair : allInputPairs()) {
        tracker.reset();
        tracker.observeBatch(
            words.data(), (std::uint64_t(1) << pair.first) |
                (std::uint64_t(1) << pair.second));
        const AgingSummary s = summarize(trackerProbs(tracker));
        entries.push_back({pair, s.narrowFullyStressedFraction});
    }
    return entries;
}

InputPair
AdderAgingAnalysis::bestPair() const
{
    const auto entries = sweepPairs();
    assert(!entries.empty());
    const auto it = std::min_element(
        entries.begin(), entries.end(),
        [](const PairSweepEntry &x, const PairSweepEntry &y) {
            return x.narrowFullyStressedFraction <
                y.narrowFullyStressedFraction;
        });
    return it->pair;
}

double
AdderAgingAnalysis::scenarioGuardband(
    const std::vector<double> &real_probs, double utilization,
    const InputPair &pair) const
{
    assert(utilization >= 0.0 && utilization <= 1.0);
    const auto pair_probs = zeroProbsForPair(pair);
    assert(pair_probs.size() == real_probs.size());
    std::vector<double> mixed(real_probs.size());
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        mixed[i] = utilization * real_probs[i] +
            (1.0 - utilization) * pair_probs[i];
    }
    return summarize(mixed).guardband;
}

double
AdderAgingAnalysis::baselineGuardband(
    const std::vector<double> &real_probs) const
{
    return summarize(real_probs).guardband;
}

double
AdderAgingAnalysis::meanDeviceGuardband(
    const std::vector<double> &zero_probs) const
{
    const auto &devices = adder_.netlist().pmosDevices();
    assert(zero_probs.size() == devices.size());
    if (devices.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        sum += model_.guardbandForZeroProb(zero_probs[i],
                                           devices[i].width);
    }
    return sum / static_cast<double>(devices.size());
}

double
AdderAgingAnalysis::wideFullyStressedFraction(
    const std::vector<double> &zero_probs) const
{
    const auto &devices = adder_.netlist().pmosDevices();
    assert(zero_probs.size() == devices.size());
    std::size_t wide = 0;
    std::size_t full = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        if (devices[i].width != WidthClass::Wide)
            continue;
        ++wide;
        if (zero_probs[i] >= 0.9999)
            ++full;
    }
    return wide == 0
        ? 0.0
        : static_cast<double>(full) / static_cast<double>(wide);
}

AgingSummary
AdderAgingAnalysis::summarize(
    const std::vector<double> &zero_probs) const
{
    return PmosAgingTracker::summarizeZeroProbs(
        adder_.netlist(), zero_probs, model_);
}

} // namespace penelope
