#include "analysis.hh"

#include <algorithm>
#include <cassert>

namespace penelope {

std::vector<OperandSample>
collectAdderOperands(TraceGenerator &gen, std::size_t count)
{
    std::vector<OperandSample> out;
    out.reserve(count);
    // Bounded scan: some suites are branch/FP heavy, so cap the
    // number of uops inspected to avoid unbounded loops.
    const std::size_t max_uops = count * 16 + 1024;
    Rng rng(0xadde7);
    for (std::size_t scanned = 0;
         out.size() < count && scanned < max_uops; ++scanned) {
        const Uop uop = gen.next();
        OperandSample s{};
        switch (uop.cls) {
          case UopClass::IntAlu: {
            const std::uint32_t a =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t b = static_cast<std::uint32_t>(
                uop.hasImm ? uop.imm : uop.srcVal2);
            // ~8% of ALU adds are subtracts: A + ~B + 1.
            if (rng.nextBool(0.08)) {
                s = {a, ~b, true};
            } else {
                s = {a, b, false};
            }
            break;
          }
          case UopClass::Load:
          case UopClass::Store: {
            // AGU: base + displacement.
            const std::uint32_t base =
                static_cast<std::uint32_t>(uop.srcVal1);
            const std::uint32_t disp = static_cast<std::uint32_t>(
                uop.addr - uop.srcVal1);
            s = {base, disp, false};
            break;
          }
          default:
            continue;
        }
        out.push_back(s);
    }
    return out;
}

AdderAgingAnalysis::AdderAgingAnalysis(const Adder &adder,
                                       const GuardbandModel &model)
    : adder_(adder), model_(model)
{
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForInput(unsigned index) const
{
    PmosAgingTracker tracker(adder_.netlist());
    tracker.applyInput(syntheticVector(adder_, index));
    std::vector<double> probs(tracker.numDevices());
    for (std::size_t i = 0; i < probs.size(); ++i)
        probs[i] = tracker.zeroProb(i);
    return probs;
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForPair(const InputPair &pair) const
{
    PmosAgingTracker tracker(adder_.netlist());
    tracker.applyInput(syntheticVector(adder_, pair.first));
    tracker.applyInput(syntheticVector(adder_, pair.second));
    std::vector<double> probs(tracker.numDevices());
    for (std::size_t i = 0; i < probs.size(); ++i)
        probs[i] = tracker.zeroProb(i);
    return probs;
}

std::vector<double>
AdderAgingAnalysis::zeroProbsForOperands(
    const std::vector<OperandSample> &ops) const
{
    PmosAgingTracker tracker(adder_.netlist());
    for (const auto &op : ops)
        tracker.applyInput(
            adder_.makeInputVector(op.a, op.b, op.cin));
    std::vector<double> probs(tracker.numDevices());
    for (std::size_t i = 0; i < probs.size(); ++i)
        probs[i] = tracker.zeroProb(i);
    return probs;
}

std::vector<PairSweepEntry>
AdderAgingAnalysis::sweepPairs() const
{
    std::vector<PairSweepEntry> entries;
    for (const InputPair &pair : allInputPairs()) {
        const AgingSummary s = summarize(zeroProbsForPair(pair));
        entries.push_back({pair, s.narrowFullyStressedFraction});
    }
    return entries;
}

InputPair
AdderAgingAnalysis::bestPair() const
{
    const auto entries = sweepPairs();
    assert(!entries.empty());
    const auto it = std::min_element(
        entries.begin(), entries.end(),
        [](const PairSweepEntry &x, const PairSweepEntry &y) {
            return x.narrowFullyStressedFraction <
                y.narrowFullyStressedFraction;
        });
    return it->pair;
}

double
AdderAgingAnalysis::scenarioGuardband(
    const std::vector<double> &real_probs, double utilization,
    const InputPair &pair) const
{
    assert(utilization >= 0.0 && utilization <= 1.0);
    const auto pair_probs = zeroProbsForPair(pair);
    assert(pair_probs.size() == real_probs.size());
    std::vector<double> mixed(real_probs.size());
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        mixed[i] = utilization * real_probs[i] +
            (1.0 - utilization) * pair_probs[i];
    }
    return summarize(mixed).guardband;
}

double
AdderAgingAnalysis::baselineGuardband(
    const std::vector<double> &real_probs) const
{
    return summarize(real_probs).guardband;
}

AgingSummary
AdderAgingAnalysis::summarize(
    const std::vector<double> &zero_probs) const
{
    return PmosAgingTracker::summarizeZeroProbs(
        adder_.netlist(), zero_probs, model_);
}

} // namespace penelope
