#include "guardband.hh"

#include <algorithm>
#include <cassert>

namespace penelope {

GuardbandModel::GuardbandModel(double guardband_at_balanced,
                               double guardband_at_worst,
                               double wide_attenuation)
    : gBalanced_(guardband_at_balanced),
      gWorst_(guardband_at_worst),
      slope_((guardband_at_worst - guardband_at_balanced) / 0.5),
      wideAttenuation_(wide_attenuation)
{
    assert(gBalanced_ >= 0.0);
    assert(gWorst_ >= gBalanced_);
    assert(wideAttenuation_ >= 0.0 && wideAttenuation_ <= 1.0);
}

GuardbandModel
GuardbandModel::paperCalibrated()
{
    // Wide attenuation 0.6: a wide PMOS at 100% zero-signal
    // probability needs 0.6*20% = 12%... still too much; the paper
    // states wide devices at 100% degrade *less* than narrow at 50%.
    // Use 0.08 so G_wide(1.0) = 1.6% < G_narrow(0.5) = 2%.
    return GuardbandModel(0.02, 0.20, 0.08);
}

double
GuardbandModel::guardbandForZeroProb(double p, WidthClass width) const
{
    assert(p >= 0.0 && p <= 1.0);
    double g = 0.0;
    if (p <= 0.5)
        g = gBalanced_ * (p / 0.5);
    else
        g = gBalanced_ + slope_ * (p - 0.5);
    if (width == WidthClass::Wide)
        g *= wideAttenuation_;
    return g;
}

double
GuardbandModel::guardbandForCellBias(double bias0) const
{
    assert(bias0 >= 0.0 && bias0 <= 1.0);
    const double p = std::max(bias0, 1.0 - bias0);
    return guardbandForZeroProb(p);
}

double
GuardbandModel::reductionFactor(double p) const
{
    const double g = guardbandForZeroProb(p);
    if (g <= 0.0)
        return gWorst_ > 0.0 ? 1e9 : 1.0;
    return gWorst_ / g;
}

VminModel::VminModel(double vmin_at_balanced, double vmin_at_worst)
    : vBalanced_(vmin_at_balanced), vWorst_(vmin_at_worst)
{
    assert(vBalanced_ >= 0.0);
    assert(vWorst_ >= vBalanced_);
}

VminModel
VminModel::paperCalibrated()
{
    return VminModel(0.01, 0.10);
}

double
VminModel::vminIncreaseForCellBias(double bias0) const
{
    assert(bias0 >= 0.0 && bias0 <= 1.0);
    const double p = std::max(bias0, 1.0 - bias0);
    const double slope = (vWorst_ - vBalanced_) / 0.5;
    return vBalanced_ + slope * (p - 0.5);
}

double
VminModel::vminIncreaseForVthShift(double relative_shift) const
{
    assert(relative_shift >= 0.0);
    // 10% Vmin guardband tolerates a 10% VTH shift [1].
    return relative_shift;
}

double
VminModel::powerFactor(double vmin_increase) const
{
    const double v = 1.0 + vmin_increase;
    return v * v;
}

} // namespace penelope
