/**
 * @file
 * Zero-signal probability to cycle-time guardband mapping.
 *
 * The paper never publishes its electrical-level transfer function,
 * but every guardband it reports is consistent with a single linear
 * calibration (which this class therefore adopts as
 * `paperCalibrated()`):
 *
 *     G(p) = 2% + 36% * (p - 0.5)      for p >= 0.5
 *
 * Anchors reproduced exactly: G(0.5)  = 2%   (perfect balancing),
 * G(0.545) = 3.6% (FP register file),  G(0.632) = 6.7% (scheduler),
 * G(0.605) = 5.8% / G(0.65) = 7.4% (adder at 21%/30% utilisation),
 * G(1.0)  = 20%  (unprotected worst case).
 */

#ifndef PENELOPE_NBTI_GUARDBAND_HH
#define PENELOPE_NBTI_GUARDBAND_HH

namespace penelope {

/** Width class of a PMOS transistor (Section 4.3). */
enum class WidthClass
{
    Narrow, ///< minimum-width device, full NBTI sensitivity
    Wide,   ///< upsized device; degrades much less (Xuan [19])
};

/**
 * Maps worst-case zero-signal probability to the required cycle-time
 * guardband fraction.
 */
class GuardbandModel
{
  public:
    /**
     * @param guardband_at_balanced guardband at p = 0.5
     * @param guardband_at_worst guardband at p = 1.0
     * @param wide_attenuation multiplicative guardband factor for
     *        wide transistors; the default keeps a wide device at
     *        100% zero-signal probability below a narrow one at 50%,
     *        as the paper's electrical simulations report.
     */
    GuardbandModel(double guardband_at_balanced = 0.02,
                   double guardband_at_worst = 0.20,
                   double wide_attenuation = 0.6);

    /** The calibration used throughout the paper. */
    static GuardbandModel paperCalibrated();

    /**
     * Guardband for a single PMOS transistor whose gate sees "0"
     * with probability @p p.  Below 0.5 the guardband ramps linearly
     * to zero (a device that is never stressed needs no margin).
     */
    double guardbandForZeroProb(double p,
                                WidthClass width =
                                    WidthClass::Narrow) const;

    /**
     * Guardband for a storage bit cell whose stored value is "0"
     * with probability @p bias0.  The cell's two cross-coupled
     * inverters stress complementary PMOS devices, so the effective
     * probability is max(bias0, 1 - bias0).
     */
    double guardbandForCellBias(double bias0) const;

    /** Guardband of an unprotected (p = 1) narrow device. */
    double worstCaseGuardband() const { return gWorst_; }

    /** Guardband of a perfectly balanced (p = 0.5) device. */
    double balancedGuardband() const { return gBalanced_; }

    /**
     * Guardband-reduction factor vs the unprotected worst case
     * (e.g.\ 10.0 for perfect balancing under the paper
     * calibration).
     */
    double reductionFactor(double p) const;

  private:
    double gBalanced_;
    double gWorst_;
    double slope_;
    double wideAttenuation_;
};

/**
 * Minimum-retention-voltage (Vmin) model for memory-like blocks.
 *
 * The paper quotes (from Abadeer & Ellis [1]) a 10% Vmin guardband
 * to tolerate a 10% VTH shift, and a 10X VTH-shift reduction for
 * balanced data patterns; this model is the Vmin analogue of
 * GuardbandModel with those anchors.
 */
class VminModel
{
  public:
    VminModel(double vmin_at_balanced = 0.01,
              double vmin_at_worst = 0.10);

    static VminModel paperCalibrated();

    /** Required Vmin increase (fraction) for cell bias @p bias0. */
    double vminIncreaseForCellBias(double bias0) const;

    /** Required Vmin increase for a relative VTH shift (1:1 per
     *  the paper's quoted rule of thumb). */
    double vminIncreaseForVthShift(double relative_shift) const;

    /**
     * Relative SRAM leakage/dynamic power factor for supply kept at
     * (1 + vmin_increase): power scales ~quadratically with V.
     */
    double powerFactor(double vmin_increase) const;

  private:
    double vBalanced_;
    double vWorst_;
};

} // namespace penelope

#endif // PENELOPE_NBTI_GUARDBAND_HH
