#include "rd_model.hh"

#include <cassert>
#include <cmath>

namespace penelope {

namespace {
/** Boltzmann constant in eV/K. */
constexpr double kBoltzmannEv = 8.617333262e-5;
/** Nominal 65nm PMOS threshold magnitude, volts. */
constexpr double nominalVth = 0.45;
} // namespace

RdModel::RdModel(const RdModelParams &params)
    : params_(params), nit_(0.0), elapsed_(0.0), stressTime_(0.0)
{
    assert(params_.maxNit > 0.0);
    assert(params_.kForward > 0.0);
    assert(params_.kReverse > 0.0);
}

double
RdModel::effectiveForwardRate() const
{
    const double arrhenius = std::exp(
        -params_.activationEnergy / kBoltzmannEv *
        (1.0 / params_.temperature -
         1.0 / params_.referenceTemperature));
    const double voltage = std::exp(
        params_.voltageAcceleration *
        (params_.stressVoltage - params_.referenceVoltage));
    return params_.kForward * arrhenius * voltage;
}

double
RdModel::effectiveReverseRate() const
{
    // Annealing is also thermally activated but insensitive to the
    // stress voltage (the field is removed during relaxation).
    const double arrhenius = std::exp(
        -params_.activationEnergy / kBoltzmannEv *
        (1.0 / params_.temperature -
         1.0 / params_.referenceTemperature));
    return params_.kReverse * arrhenius;
}

void
RdModel::stress(double seconds)
{
    assert(seconds >= 0.0);
    if (seconds == 0.0)
        return;
    const double kf = effectiveForwardRate();
    // dN/dt = kf (Nmax - N)  =>  N(t) = Nmax - (Nmax - N0) e^{-kf t}
    nit_ = params_.maxNit -
        (params_.maxNit - nit_) * std::exp(-kf * seconds);
    elapsed_ += seconds;
    stressTime_ += seconds;
}

void
RdModel::relax(double seconds)
{
    assert(seconds >= 0.0);
    if (seconds == 0.0)
        return;
    const double kr = effectiveReverseRate();
    // dN/dt = -kr N  =>  N(t) = N0 e^{-kr t}; recovery is asymptotic,
    // full recovery only after infinite relaxation (paper, 2.2).
    nit_ *= std::exp(-kr * seconds);
    elapsed_ += seconds;
}

void
RdModel::observe(bool gate_level, double seconds)
{
    if (gate_level)
        relax(seconds);
    else
        stress(seconds);
}

double
RdModel::fractionDegraded() const
{
    return nit_ / params_.maxNit;
}

double
RdModel::vthShift() const
{
    return params_.vthShiftAtMaxNit * fractionDegraded();
}

double
RdModel::relativeVthShift() const
{
    return vthShift() / nominalVth;
}

double
RdModel::stressFraction() const
{
    if (elapsed_ <= 0.0)
        return 0.0;
    return stressTime_ / elapsed_;
}

double
RdModel::equilibriumFraction(double alpha, const RdModelParams &params)
{
    assert(alpha >= 0.0 && alpha <= 1.0);
    const double kf = params.kForward;
    const double kr = params.kReverse;
    const double denom = alpha * kf + (1.0 - alpha) * kr;
    if (denom <= 0.0)
        return 0.0;
    return alpha * kf / denom;
}

void
RdModel::reset()
{
    nit_ = 0.0;
    elapsed_ = 0.0;
    stressTime_ = 0.0;
}

} // namespace penelope
