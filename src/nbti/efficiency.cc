#include "efficiency.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace penelope {

double
nbtiEfficiency(double delay_factor, double guardband,
               double tdp_factor)
{
    assert(delay_factor > 0.0);
    assert(guardband >= 0.0);
    assert(tdp_factor > 0.0);
    const double effective_delay = delay_factor * (1.0 + guardband);
    return std::pow(effective_delay, 3.0) * tdp_factor;
}

double
nbtiEfficiency(const BlockCost &block)
{
    return nbtiEfficiency(block.cycleTimeFactor, block.guardband,
                          block.tdpFactor);
}

ProcessorCost::ProcessorCost(double combined_cpi)
    : cpi_(combined_cpi)
{
    assert(cpi_ > 0.0);
}

void
ProcessorCost::addBlock(BlockCost block)
{
    assert(block.cycleTimeFactor > 0.0);
    assert(block.tdpFactor > 0.0);
    assert(block.tdpWeight > 0.0);
    blocks_.push_back(std::move(block));
}

double
ProcessorCost::maxCycleTime() const
{
    double worst = 1.0;
    for (const auto &b : blocks_)
        worst = std::max(worst, b.cycleTimeFactor);
    return worst;
}

double
ProcessorCost::delay() const
{
    return cpi_ * maxCycleTime();
}

double
ProcessorCost::tdp() const
{
    if (blocks_.empty())
        return 1.0;
    double weight_sum = 0.0;
    double tdp_sum = 0.0;
    for (const auto &b : blocks_) {
        weight_sum += b.tdpWeight;
        tdp_sum += b.tdpWeight * b.tdpFactor;
    }
    return tdp_sum / weight_sum;
}

double
ProcessorCost::guardband() const
{
    double worst = 0.0;
    for (const auto &b : blocks_)
        worst = std::max(worst, b.guardband);
    return worst;
}

double
ProcessorCost::efficiency() const
{
    return nbtiEfficiency(delay(), guardband(), tdp());
}

} // namespace penelope
