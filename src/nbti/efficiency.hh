/**
 * @file
 * NBTIefficiency metric (Section 4.2, equations 1-4).
 *
 * The paper combines delay, guardband and TDP into a single figure
 * of merit.  Its worked examples (baseline 1.73, periodic inversion
 * 1.41, adder 1.24, register file 1.12, scheduler 1.24, DL0 1.09,
 * whole Penelope processor 1.28) uniquely determine the form
 *
 *     NBTIefficiency = (Delay * (1 + NBTIguardband))^3 * TDP
 *
 * i.e.\ the guardband extends the effective delay, delay is cubed
 * like in PD^3 / ED^2, and TDP multiplies linearly.
 *
 * Processor-level composition (eqs. 2-4): delay is combined CPI times
 * the maximum per-block cycle time; TDP is the (weighted) sum of
 * per-block TDP; the guardband is the maximum over blocks.
 */

#ifndef PENELOPE_NBTI_EFFICIENCY_HH
#define PENELOPE_NBTI_EFFICIENCY_HH

#include <string>
#include <vector>

namespace penelope {

/**
 * Per-block cost/benefit parameters, all relative to the unprotected
 * baseline design of the same block.
 */
struct BlockCost
{
    std::string name;

    /** Cycle-time factor of the block (1.10 = 10% slower clock). */
    double cycleTimeFactor = 1.0;

    /** Residual NBTI guardband fraction after mitigation. */
    double guardband = 0.0;

    /** TDP factor of the block (1.01 = +1%). */
    double tdpFactor = 1.0;

    /** Relative weight of this block in the processor TDP budget. */
    double tdpWeight = 1.0;
};

/** Equation (1): (delay * (1 + guardband))^3 * TDP. */
double nbtiEfficiency(double delay_factor, double guardband,
                      double tdp_factor);

/** Efficiency for a single block (unit CPI). */
double nbtiEfficiency(const BlockCost &block);

/**
 * Processor-level metric aggregation (equations 2-4).
 *
 * CPI must come from a simulation of all mechanisms together; it
 * cannot be composed from per-block CPIs (Section 4.2).
 */
class ProcessorCost
{
  public:
    /** @param combined_cpi normalised CPI of the full processor. */
    explicit ProcessorCost(double combined_cpi = 1.0);

    void addBlock(BlockCost block);

    /** Equation (2): CPI * max cycle-time factor. */
    double delay() const;

    /** Maximum per-block cycle-time factor. */
    double maxCycleTime() const;

    /** Equation (3): weighted sum of per-block TDP factors
     *  (weights normalised to sum to 1). */
    double tdp() const;

    /** Equation (4): maximum per-block guardband. */
    double guardband() const;

    /** Equation (1) applied to the processor aggregates. */
    double efficiency() const;

    double combinedCpi() const { return cpi_; }
    void combinedCpi(double cpi) { cpi_ = cpi; }

    const std::vector<BlockCost> &blocks() const { return blocks_; }

  private:
    double cpi_;
    std::vector<BlockCost> blocks_;
};

} // namespace penelope

#endif // PENELOPE_NBTI_EFFICIENCY_HH
