#include "surrogate.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hh"
#include "obs/metrics.hh"

namespace penelope {

double
SurrogateFit::predict(const double *features,
                      std::size_t count) const
{
    assert(count == featureCount());
    double y = coeffs.empty() ? 0.0 : coeffs[0];
    for (std::size_t j = 0; j < count; ++j)
        y += coeffs[j + 1] * features[j];
    return y;
}

double
SurrogateFit::predict(const std::vector<double> &features) const
{
    return predict(features.data(), features.size());
}

namespace {

/** Solve A x = b in place by Gaussian elimination with partial
 *  pivoting.  Deterministic: the pivot is the largest-magnitude
 *  entry, ties towards the lower row. */
std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> &a,
                  std::vector<double> &b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::fabs(a[row][col]) > std::fabs(a[pivot][col]))
                pivot = row;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        const double diag = a[col][col];
        if (diag == 0.0)
            continue; // singular column: leave x[col] = 0
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / diag;
            if (factor == 0.0)
                continue;
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t col = n; col-- > 0;) {
        if (a[col][col] == 0.0)
            continue;
        double sum = b[col];
        for (std::size_t k = col + 1; k < n; ++k)
            sum -= a[col][k] * x[k];
        x[col] = sum / a[col][col];
    }
    return x;
}

double
rmse(const SurrogateFit &fit,
     const std::vector<const SurrogateSample *> &set)
{
    if (set.empty())
        return 0.0;
    double sum = 0.0;
    for (const SurrogateSample *s : set) {
        const double err = fit.predict(s->features) - s->score;
        sum += err * err;
    }
    return std::sqrt(sum / static_cast<double>(set.size()));
}

} // namespace

SurrogateFit
fitSurrogate(const std::vector<SurrogateSample> &samples,
             const SurrogateFitConfig &config)
{
    const bool timed = obs::enabled();
    const std::uint64_t t0 = timed ? obs::monotonicMicros() : 0;
    SurrogateFit fit;
    if (samples.empty())
        return fit;
    PENELOPE_OBS_COUNTER("surrogate.fits", "1").add();
    const std::size_t d = samples.front().features.size();

    // Per-sample seeded split: membership depends only on
    // (seed, index), never on sample order or the engine's RNG.
    std::vector<const SurrogateSample *> train;
    std::vector<const SurrogateSample *> holdout;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        assert(samples[i].features.size() == d);
        Rng rng(mixSeed(config.seed, i));
        if (rng.nextBool(config.holdoutFraction))
            holdout.push_back(&samples[i]);
        else
            train.push_back(&samples[i]);
    }
    if (train.empty())
        train.swap(holdout);

    // Normal equations over [1, features]: A = X^T X + ridge * I
    // (intercept unregularised), b = X^T y.  Accumulation order is
    // fixed (sample order, then feature order), so the solve -- and
    // therefore every coefficient -- is bit-deterministic.
    const std::size_t n = d + 1;
    std::vector<std::vector<double>> a(
        n, std::vector<double>(n, 0.0));
    std::vector<double> b(n, 0.0);
    for (const SurrogateSample *s : train) {
        std::vector<double> row(n);
        row[0] = 1.0;
        for (std::size_t j = 0; j < d; ++j)
            row[j + 1] = s->features[j];
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                a[r][c] += row[r] * row[c];
            b[r] += row[r] * s->score;
        }
    }
    for (std::size_t j = 1; j < n; ++j)
        a[j][j] += config.ridge;

    fit.coeffs = solveLinearSystem(a, b);
    fit.trainCount = train.size();
    fit.holdoutCount = holdout.size();
    fit.trainRmse = rmse(fit, train);
    fit.holdoutRmse = rmse(fit, holdout);
    if (timed)
        PENELOPE_OBS_HISTOGRAM("surrogate.fit_latency", "us")
            .record(obs::monotonicMicros() - t0);
    return fit;
}

bool
auditSelects(std::uint64_t audit_seed, std::size_t index,
             double fraction)
{
    Rng rng(mixSeed(audit_seed, index));
    return rng.nextBool(fraction);
}

std::vector<std::size_t>
triageSelect(const std::vector<double> &predicted,
             const TriageConfig &config, TriageStats &stats)
{
    const std::size_t n = predicted.size();
    stats.candidatesScored += n;

    // Top-K by predicted score, ties towards the lower index.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    const std::size_t k = std::min(config.topK, n);
    std::partial_sort(
        order.begin(), order.begin() + k, order.end(),
        [&](std::size_t x, std::size_t y) {
            if (predicted[x] != predicted[y])
                return predicted[x] > predicted[y];
            return x < y;
        });

    std::vector<bool> selected(n, false);
    for (std::size_t i = 0; i < k; ++i)
        selected[order[i]] = true;

    std::size_t audited = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (selected[i])
            continue;
        if (auditSelects(config.auditSeed, i,
                         config.auditFraction)) {
            selected[i] = true;
            ++audited;
        }
    }

    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < n; ++i) {
        if (selected[i])
            out.push_back(i);
    }
    stats.exactEvaluated += out.size();
    stats.audited += audited;
    stats.pruned += n - out.size();
    return out;
}

} // namespace penelope
