#include "long_term.hh"

#include <cassert>
#include <cmath>
#include <limits>

namespace penelope {

LongTermModel::LongTermModel(const LongTermParams &params)
    : params_(params)
{
    assert(params_.prefactor > 0.0);
    assert(params_.diffusionExponent > 0.0);
    assert(params_.designLifetime > 0.0);
}

double
LongTermModel::vthShift(double alpha, double seconds) const
{
    assert(alpha >= 0.0 && alpha <= 1.0);
    assert(seconds >= 0.0);
    if (alpha == 0.0 || seconds == 0.0)
        return 0.0;
    const double duty = std::pow(alpha, params_.dutyExponent);
    const double aging = std::pow(seconds / params_.designLifetime,
                                  params_.diffusionExponent);
    return params_.prefactor * duty * aging;
}

double
LongTermModel::endOfLifeShift(double alpha) const
{
    return vthShift(alpha, params_.designLifetime);
}

double
LongTermModel::lifetime(double alpha, double limit) const
{
    assert(limit > 0.0);
    if (alpha <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double duty = std::pow(alpha, params_.dutyExponent);
    const double ratio = limit / (params_.prefactor * duty);
    return params_.designLifetime *
        std::pow(ratio, 1.0 / params_.diffusionExponent);
}

double
LongTermModel::lifetimeGain(double alpha_from, double alpha_to) const
{
    const double limit = 0.1; // any fixed limit cancels in the ratio
    const double from = lifetime(alpha_from, limit);
    const double to = lifetime(alpha_to, limit);
    if (std::isinf(to))
        return std::numeric_limits<double>::infinity();
    return to / from;
}

} // namespace penelope
