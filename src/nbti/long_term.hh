/**
 * @file
 * Long-term (power-law) NBTI lifetime model.
 *
 * Complements the cycle-accurate RdModel with the standard analytic
 * end-of-life form used in the NBTI literature the paper cites:
 *
 *     dVth(t, alpha) = A * alpha^k * t^n
 *
 * where alpha is the zero-signal probability (duty cycle of stress),
 * n is the diffusion exponent (1/6 for H2 diffusion, 1/4 for atomic
 * H) and k is calibrated so that halving the duty cycle reduces the
 * end-of-life VTH shift by 10X, the headline number the paper quotes
 * from Abadeer & Ellis [1].
 */

#ifndef PENELOPE_NBTI_LONG_TERM_HH
#define PENELOPE_NBTI_LONG_TERM_HH

namespace penelope {

/** Parameters of the power-law lifetime model. */
struct LongTermParams
{
    /** Prefactor scaled so a transistor stressed 100% of the time
     *  reaches a 10% relative VTH shift at the 7-year design
     *  lifetime. */
    double prefactor = 0.1;

    /** Diffusion exponent n (1/6: molecular H2 diffusion). */
    double diffusionExponent = 1.0 / 6.0;

    /** Duty-cycle exponent k; log2(10) makes alpha=0.5 exactly 10X
     *  better than alpha=1, matching the paper's guardband claims. */
    double dutyExponent = 3.321928094887362;

    /** Design lifetime in seconds (7 years). */
    double designLifetime = 7.0 * 365.25 * 86400.0;
};

/**
 * Closed-form long-term NBTI estimator.
 *
 * All shifts are relative (fraction of nominal VTH).
 */
class LongTermModel
{
  public:
    explicit LongTermModel(const LongTermParams &params =
                               LongTermParams());

    /** Relative VTH shift after @p seconds at duty cycle @p alpha. */
    double vthShift(double alpha, double seconds) const;

    /** Relative VTH shift at the design lifetime. */
    double endOfLifeShift(double alpha) const;

    /**
     * Seconds until the relative shift reaches @p limit at duty
     * cycle @p alpha (infinity if alpha == 0).
     */
    double lifetime(double alpha, double limit) const;

    /**
     * Lifetime-extension factor obtained by reducing the duty cycle
     * from @p alpha_from to @p alpha_to at a fixed shift limit.
     */
    double lifetimeGain(double alpha_from, double alpha_to) const;

    const LongTermParams &params() const { return params_; }

  private:
    LongTermParams params_;
};

} // namespace penelope

#endif // PENELOPE_NBTI_LONG_TERM_HH
