/**
 * @file
 * Reaction-diffusion style NBTI aging model.
 *
 * Implements the degradation/self-healing dynamics the paper
 * describes in Section 2 (after Alam, IEDM 2003): during stress (gate
 * at logic "0") interface traps (NIT) are created at a rate
 * proportional to the number of remaining Si-H bonds; during relax
 * (gate at "1") traps are annealed at a rate proportional to the
 * current NIT.  This yields the alternating saw-tooth of the paper's
 * Figure 1, exponential saturation under DC stress, asymptotic (never
 * complete) recovery, and a long-run equilibrium that is linear in
 * the zero-signal probability when the forward and reverse rates
 * match -- the property the paper's calibrated guardband numbers
 * reflect.
 */

#ifndef PENELOPE_NBTI_RD_MODEL_HH
#define PENELOPE_NBTI_RD_MODEL_HH

#include <cstdint>

namespace penelope {

/** Physical parameters of the RD aging model. */
struct RdModelParams
{
    /** Maximum interface-trap density (normalised units). */
    double maxNit = 1.0;

    /** Forward (trap generation) rate constant, 1/s at nominal
     *  temperature and voltage. */
    double kForward = 1.0e-8;

    /** Reverse (self-healing) rate constant, 1/s. */
    double kReverse = 1.0e-8;

    /** Full VTH shift when NIT saturates, in volts.
     *  0.3 * 0.45V nominal VTH is a deliberately pessimistic 65nm
     *  end-of-life bound. */
    double vthShiftAtMaxNit = 0.135;

    /** Operating temperature in kelvin. */
    double temperature = 358.0; // 85C

    /** Reference temperature the rate constants are quoted at. */
    double referenceTemperature = 358.0;

    /** Arrhenius activation energy, eV (trap generation). */
    double activationEnergy = 0.12;

    /** Gate overdrive voltage (|Vgs|) during stress, volts. */
    double stressVoltage = 1.1;

    /** Reference stress voltage. */
    double referenceVoltage = 1.1;

    /** Exponential voltage acceleration factor (1/V). */
    double voltageAcceleration = 3.0;
};

/**
 * Continuous-time RD aging state for one PMOS transistor.
 *
 * The state advances analytically (closed-form exponentials), so any
 * step size is exact: no Euler integration error.
 */
class RdModel
{
  public:
    explicit RdModel(const RdModelParams &params = RdModelParams());

    /** Apply @p seconds of stress (gate at "0"). */
    void stress(double seconds);

    /** Apply @p seconds of relaxation (gate at "1"). */
    void relax(double seconds);

    /** Convenience: advance by @p seconds at the given gate level. */
    void observe(bool gate_level, double seconds);

    /** Current interface trap density (normalised). */
    double nit() const { return nit_; }

    /** Fraction of the maximum trap density currently present. */
    double fractionDegraded() const;

    /** Current threshold-voltage shift in volts. */
    double vthShift() const;

    /** Relative VTH shift w.r.t.\ a 0.45V nominal threshold. */
    double relativeVthShift() const;

    /** Total simulated seconds so far. */
    double elapsedSeconds() const { return elapsed_; }

    /** Fraction of simulated time spent under stress. */
    double stressFraction() const;

    const RdModelParams &params() const { return params_; }

    /**
     * Long-run equilibrium degradation fraction for a signal with
     * zero-signal probability @p alpha, given forward/reverse rates.
     * With kForward == kReverse this is exactly @p alpha.
     */
    static double equilibriumFraction(double alpha,
                                      const RdModelParams &params =
                                          RdModelParams());

    /** Effective (temperature/voltage accelerated) forward rate. */
    double effectiveForwardRate() const;

    /** Effective reverse rate (temperature accelerated). */
    double effectiveReverseRate() const;

    /** Reset to the pristine (zero-trap) state. */
    void reset();

  private:
    RdModelParams params_;
    double nit_;
    double elapsed_;
    double stressTime_;
};

} // namespace penelope

#endif // PENELOPE_NBTI_RD_MODEL_HH
