/**
 * @file
 * Fitted duty -> degradation surrogate: the cheap tier of the
 * two-tier evaluation pipeline.
 *
 * The exact engine prices every candidate (an operand stream, an
 * input rotation, an adversarial trace configuration) with a full
 * batched netlist replay.  Sweeps and searches are bottlenecked by
 * the *number* of such evaluations, not by any single kernel, so
 * this module fits a closed-form linear predictor from per-input-bit
 * duty features to the exact engine's degradation score and uses it
 * to decide *what* to evaluate exactly: the predicted top-K plus a
 * seeded audit sample.
 *
 * The iron contract of the repo extends to the surrogate: every
 * printed figure or statistic comes from the exact engine; the
 * surrogate only prunes the candidate list.  Fitting and audit
 * sampling draw from their own seeded xoshiro streams
 * (mixSeed(seed, index) per sample), so enabling or disabling
 * triage never perturbs the exact engine's draw sequence, and every
 * decision is a pure function of (samples, seed) -- bit-identical
 * across jobs counts, cache states and shard layouts.
 */

#ifndef PENELOPE_NBTI_SURROGATE_HH
#define PENELOPE_NBTI_SURROGATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace penelope {

/** One training sample: a feature vector and the exact engine's
 *  degradation score for the same candidate. */
struct SurrogateSample
{
    std::vector<double> features;
    double score = 0.0;
};

/** Fitting knobs.  Everything is seeded and deterministic. */
struct SurrogateFitConfig
{
    /** Seed of the fit's own RNG stream (train/holdout split).
     *  Distinct from every engine stream by construction: the
     *  split draws Rng(mixSeed(seed, sample_index)) and nothing
     *  else ever sees those streams. */
    std::uint64_t seed = 0x5a6e'0f17'ca11'ab1eULL;

    /** Fraction of samples withheld from the normal equations and
     *  used only for the held-out error estimate. */
    double holdoutFraction = 0.25;

    /** Ridge (L2) regularisation added to the normal equations'
     *  diagonal (not the intercept); keeps the solve well-posed
     *  when features are collinear or samples are few. */
    double ridge = 1e-6;
};

/**
 * A fitted linear model: score ~ coeffs[0] + sum_j coeffs[1+j] *
 * features[j].  Fit by ridge-regularised least squares (normal
 * equations, Gaussian elimination with partial pivoting -- no
 * iterative solver, so the coefficients are a deterministic
 * function of the training set and the seed).
 */
struct SurrogateFit
{
    /** Intercept first, then one weight per feature. */
    std::vector<double> coeffs;

    double trainRmse = 0.0;
    double holdoutRmse = 0.0;
    std::size_t trainCount = 0;
    std::size_t holdoutCount = 0;

    /** Number of features the fit expects. */
    std::size_t
    featureCount() const
    {
        return coeffs.empty() ? 0 : coeffs.size() - 1;
    }

    /** Predicted score for one feature vector. */
    double predict(const double *features, std::size_t count) const;
    double predict(const std::vector<double> &features) const;
};

/**
 * Fit the surrogate on @p samples.  The train/holdout split is
 * per-sample seeded (sample i goes to the holdout set iff
 * Rng(mixSeed(config.seed, i)).nextDouble() < holdoutFraction), so
 * membership is independent of sample order and count.  Every
 * sample must carry the same feature count.
 */
SurrogateFit
fitSurrogate(const std::vector<SurrogateSample> &samples,
             const SurrogateFitConfig &config = {});

/** Triage knobs: which candidates the exact engine runs. */
struct TriageConfig
{
    /** Predicted-best candidates always evaluated exactly. */
    std::size_t topK = 8;

    /**
     * Seeded audit sample: candidate i is additionally evaluated
     * exactly iff Rng(mixSeed(auditSeed, i)).nextBool(fraction).
     * nextDouble() lives in [0, 1), so a fraction of 1.0 selects
     * every candidate -- the full-audit mode that callers require
     * to be byte-identical to triage disabled.
     */
    double auditFraction = 0.05;
    std::uint64_t auditSeed = 0xa0d1'7f2e'5eedULL;
};

/** What the triage pass did -- printed by `--surrogate-stats` so
 *  nothing is silently capped. */
struct TriageStats
{
    std::size_t candidatesScored = 0; ///< surrogate predictions made
    std::size_t pruned = 0;           ///< skipped by the exact engine
    std::size_t exactEvaluated = 0;   ///< selected for exact runs
    std::size_t audited = 0;          ///< exact runs owed to the audit
    std::size_t trainEvaluated = 0;   ///< exact runs spent on training

    void
    merge(const TriageStats &other)
    {
        candidatesScored += other.candidatesScored;
        pruned += other.pruned;
        exactEvaluated += other.exactEvaluated;
        audited += other.audited;
        trainEvaluated += other.trainEvaluated;
    }
};

/** Whether the seeded audit stream selects candidate @p index. */
bool
auditSelects(std::uint64_t audit_seed, std::size_t index,
             double fraction);

/**
 * Select the candidates the exact engine should run: the top-K by
 * predicted score (higher is better; ties break towards the lower
 * index) plus the seeded audit sample.  Returns ascending candidate
 * indices and accumulates counts into @p stats (audited counts the
 * audit picks not already in the top-K).
 */
std::vector<std::size_t>
triageSelect(const std::vector<double> &predicted,
             const TriageConfig &config, TriageStats &stats);

} // namespace penelope

#endif // PENELOPE_NBTI_SURROGATE_HH
