/**
 * @file
 * Tests for the netlist substrate and the gate-level adders:
 * functional correctness against 64-bit reference arithmetic,
 * PMOS extraction, aging accounting and the idle-input machinery.
 */

#include <gtest/gtest.h>

#include "adder/adder.hh"
#include "adder/analysis.hh"
#include "adder/idle_inputs.hh"
#include "circuit/aging.hh"
#include "circuit/netlist.hh"
#include "common/rng.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// --------------------------------------------------------- Netlist

TEST(Netlist, PrimitiveTruthTables)
{
    Netlist n;
    const SignalId a = n.addInput("a");
    const SignalId b = n.addInput("b");
    const SignalId inv = n.addInv(a);
    const SignalId nand2 = n.addNand({a, b});
    const SignalId nor2 = n.addNor({a, b});
    const SignalId and2 = n.addAnd(a, b);
    const SignalId or2 = n.addOr(a, b);
    const SignalId xor2 = n.addXor(a, b);
    const SignalId xnor2 = n.addXnor(a, b);
    const SignalId tg = n.addTgXor(a, b);

    std::vector<std::uint8_t> sig;
    for (int va = 0; va <= 1; ++va) {
        for (int vb = 0; vb <= 1; ++vb) {
            n.evaluate({va != 0, vb != 0}, sig);
            EXPECT_EQ(sig[inv], va ^ 1);
            EXPECT_EQ(sig[nand2], (va & vb) ^ 1);
            EXPECT_EQ(sig[nor2], (va | vb) ^ 1);
            EXPECT_EQ(sig[and2], va & vb);
            EXPECT_EQ(sig[or2], va | vb);
            EXPECT_EQ(sig[xor2], va ^ vb);
            EXPECT_EQ(sig[xnor2], (va ^ vb) ^ 1);
            EXPECT_EQ(sig[tg], va ^ vb);
        }
    }
}

TEST(Netlist, MuxTruthTable)
{
    Netlist n;
    const SignalId s = n.addInput();
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    const SignalId mux = n.addMux(s, a, b);
    std::vector<std::uint8_t> sig;
    for (int vs = 0; vs <= 1; ++vs)
        for (int va = 0; va <= 1; ++va)
            for (int vb = 0; vb <= 1; ++vb) {
                n.evaluate({vs != 0, va != 0, vb != 0}, sig);
                EXPECT_EQ(sig[mux], vs ? va : vb);
            }
}

TEST(Netlist, ConstantsEvaluate)
{
    Netlist n;
    n.addInput();
    const SignalId c0 = n.addConst(false);
    const SignalId c1 = n.addConst(true);
    std::vector<std::uint8_t> sig;
    n.evaluate({true}, sig);
    EXPECT_EQ(sig[c0], 0);
    EXPECT_EQ(sig[c1], 1);
}

TEST(Netlist, PmosCountsPerGate)
{
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    n.addInv(a);        // 1 PMOS
    n.addNand({a, b});  // 2 PMOS
    n.addNor({a, b});   // 2 PMOS
    n.finalize();
    EXPECT_EQ(n.numPmos(), 5u);
}

TEST(Netlist, TgXorPmosCount)
{
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    n.addTgXor(a, b); // 2 inverters + 2 pass devices
    n.finalize();
    EXPECT_EQ(n.numPmos(), 4u);
}

TEST(Netlist, FanoutWidthClassification)
{
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId hub = n.addInv(a);
    // Give 'hub' fanout 4.
    for (int i = 0; i < 4; ++i)
        n.addInv(hub);
    n.finalize(4);
    bool hub_is_wide = false;
    for (const auto &d : n.pmosDevices()) {
        if (d.gateSignal == a && d.width == WidthClass::Wide)
            hub_is_wide = true;
    }
    EXPECT_TRUE(hub_is_wide);
}

TEST(Netlist, MarkWideForces)
{
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId out = n.addInv(a);
    n.markWide(out);
    n.finalize(100); // fanout threshold never reached
    ASSERT_EQ(n.pmosDevices().size(), 1u);
    EXPECT_EQ(n.pmosDevices()[0].width, WidthClass::Wide);
}

TEST(Netlist, Figure2Circuit)
{
    // D = NOT(NOR(NAND(A,B), C)): D = 1 iff (A NAND B) or C.
    Netlist n;
    const SignalId d = buildFigure2Circuit(n);
    std::vector<std::uint8_t> sig;
    for (int a = 0; a <= 1; ++a)
        for (int b = 0; b <= 1; ++b)
            for (int c = 0; c <= 1; ++c) {
                n.evaluate({a != 0, b != 0, c != 0}, sig);
                const int expect = ((!(a && b)) || c) ? 1 : 0;
                EXPECT_EQ(sig[d], expect);
            }
}

TEST(Netlist, DepthComputed)
{
    Netlist n;
    const SignalId a = n.addInput();
    SignalId s = a;
    for (int i = 0; i < 5; ++i)
        s = n.addInv(s);
    n.finalize();
    EXPECT_EQ(n.depth(), 5u);
}

// ----------------------------------------------------------- Aging

TEST(Aging, StressWhenGateAtZero)
{
    Netlist n;
    const SignalId a = n.addInput();
    n.addInv(a);
    n.finalize();
    PmosAgingTracker tracker(n);
    tracker.applyInput({false}, 3);
    tracker.applyInput({true}, 1);
    EXPECT_DOUBLE_EQ(tracker.zeroProb(0), 0.75);
}

TEST(Aging, Figure2BiasExample)
{
    // Section 3: if all inputs are "0" most of the time, D is very
    // biased towards "0" and the output inverter's PMOS degrades.
    Netlist n;
    const SignalId d = buildFigure2Circuit(n);
    (void)d;
    const SignalId dummy = n.addInv(d); // consumer of D
    (void)dummy;
    n.finalize();
    PmosAgingTracker tracker(n);
    // All-zero inputs 90% of the time: D = 1 then... A=B=0 -> NAND=1,
    // NOR(1, C)=0 -> D=... D=NOT(0)=1. So bias D towards 1; use
    // C=1 mix to exercise both.
    for (int i = 0; i < 9; ++i)
        tracker.applyInput({false, false, false});
    tracker.applyInput({true, true, false});
    const auto summary =
        tracker.summarize(GuardbandModel::paperCalibrated());
    EXPECT_GT(summary.worstNarrowZeroProb, 0.89);
    EXPECT_GT(summary.guardband, 0.1);
}

TEST(Aging, CombinedZeroProbsMix)
{
    Netlist n;
    const SignalId a = n.addInput();
    n.addInv(a);
    n.finalize();
    PmosAgingTracker busy(n);
    busy.applyInput({false}); // stressed while busy
    PmosAgingTracker idle(n);
    idle.applyInput({true}); // relaxed while idle
    const auto mixed = busy.combinedZeroProbs(idle, 0.25);
    ASSERT_EQ(mixed.size(), 1u);
    EXPECT_DOUBLE_EQ(mixed[0], 0.25);
}

TEST(Aging, SummaryCountsWidthClasses)
{
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId w = n.addInv(a);
    n.markWide(w);
    n.addInv(a);
    n.finalize(100);
    PmosAgingTracker tracker(n);
    tracker.applyInput({false});
    const auto s =
        tracker.summarize(GuardbandModel::paperCalibrated());
    EXPECT_EQ(s.numDevices, 2u);
    EXPECT_EQ(s.numNarrow, 1u);
    EXPECT_EQ(s.numWide, 1u);
    EXPECT_DOUBLE_EQ(s.worstNarrowZeroProb, 1.0);
    EXPECT_DOUBLE_EQ(s.worstWideZeroProb, 1.0);
    // One narrow fully stressed out of two devices.
    EXPECT_DOUBLE_EQ(s.narrowFullyStressedFraction, 0.5);
}

// ---------------------------------------------------------- Adders

/** Property sweep: all three topologies match reference addition. */
class AdderCorrectness
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{};

TEST_P(AdderCorrectness, MatchesReference)
{
    const int topology = std::get<0>(GetParam());
    const unsigned width = std::get<1>(GetParam());
    std::unique_ptr<Adder> adder;
    switch (topology) {
      case 0:
        adder = std::make_unique<LadnerFischerAdder>(width);
        break;
      case 1:
        adder = std::make_unique<RippleCarryAdder>(width);
        break;
      default:
        adder = std::make_unique<KoggeStoneAdder>(width);
        break;
    }
    const std::uint64_t mask = width >= 64
        ? ~std::uint64_t(0)
        : (std::uint64_t(1) << width) - 1;
    Rng rng(width * 131 + topology);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng() & mask;
        const std::uint64_t b = rng() & mask;
        const bool cin = rng.nextBool();
        bool cout = false;
        const std::uint64_t sum = adder->evaluate(a, b, cin, &cout);
        const unsigned __int128 full =
            static_cast<unsigned __int128>(a) + b + (cin ? 1 : 0);
        EXPECT_EQ(sum, static_cast<std::uint64_t>(full) & mask);
        EXPECT_EQ(cout, ((full >> width) & 1) != 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, AdderCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(4u, 8u, 13u, 32u, 48u)));

TEST(Adder, EdgeOperands)
{
    LadnerFischerAdder adder(32);
    bool cout = false;
    EXPECT_EQ(adder.evaluate(0, 0, false), 0u);
    EXPECT_EQ(adder.evaluate(0xffffffff, 1, false, &cout), 0u);
    EXPECT_TRUE(cout);
    EXPECT_EQ(adder.evaluate(0xffffffff, 0xffffffff, true, &cout),
              0xffffffffu);
    EXPECT_TRUE(cout);
}

TEST(Adder, LadnerFischerShallowerThanRipple)
{
    LadnerFischerAdder lf(32);
    RippleCarryAdder rc(32);
    EXPECT_LT(lf.netlist().depth(), rc.netlist().depth());
}

TEST(Adder, KoggeStoneLargerThanLadnerFischer)
{
    // KS trades wires/area for minimal fanout.
    LadnerFischerAdder lf(32);
    KoggeStoneAdder ks(32);
    EXPECT_GT(ks.netlist().numPmos(), lf.netlist().numPmos());
}

// ----------------------------------------------------- IdleInputs

TEST(IdleInputs, PaperNumbering)
{
    const auto &inputs = syntheticInputs();
    EXPECT_FALSE(inputs[0].inputA); // input 1 = <0,0,0>
    EXPECT_FALSE(inputs[0].inputB);
    EXPECT_FALSE(inputs[0].carryIn);
    EXPECT_FALSE(inputs[1].inputA); // input 2 = <0,0,1>
    EXPECT_TRUE(inputs[1].carryIn);
    EXPECT_TRUE(inputs[7].inputA); // input 8 = <1,1,1>
    EXPECT_TRUE(inputs[7].inputB);
    EXPECT_TRUE(inputs[7].carryIn);
}

TEST(IdleInputs, TwentyEightPairs)
{
    const auto pairs = allInputPairs();
    EXPECT_EQ(pairs.size(), 28u);
    EXPECT_EQ(pairLabel(pairs.front()), "1+2");
    EXPECT_EQ(pairLabel(pairs.back()), "7+8");
}

TEST(IdleInputs, RoundRobinAlternates)
{
    RoundRobinInjector injector({0, 7});
    EXPECT_EQ(injector.nextIdleInput(), 0u);
    EXPECT_EQ(injector.nextIdleInput(), 7u);
    EXPECT_EQ(injector.nextIdleInput(), 0u);
}

TEST(IdleInputs, SyntheticVectorReplicatesBits)
{
    LadnerFischerAdder adder(8);
    const auto v = syntheticVector(adder, 7); // <1,1,1>
    for (bool bit : v)
        EXPECT_TRUE(bit);
    const auto v0 = syntheticVector(adder, 0); // <0,0,0>
    for (bool bit : v0)
        EXPECT_FALSE(bit);
}

// ------------------------------------------------------- Analysis

TEST(Analysis, PairProbsAreHalfQuantised)
{
    LadnerFischerAdder adder(16);
    AdderAgingAnalysis an(adder,
                          GuardbandModel::paperCalibrated());
    const auto probs = an.zeroProbsForPair({0, 7});
    for (double p : probs) {
        EXPECT_TRUE(p == 0.0 || p == 0.5 || p == 1.0)
            << "prob " << p;
    }
}

TEST(Analysis, BestPairAlternatesEveryRail)
{
    // The winning pairs complement every input rail; under such a
    // pair no wide device's stress exceeds 50% on the G-chain and
    // the narrow fully-stressed fraction is minimal.
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis an(adder,
                          GuardbandModel::paperCalibrated());
    const InputPair best = an.bestPair();
    const auto &inputs = syntheticInputs();
    const SyntheticInput &x = inputs[best.first];
    const SyntheticInput &y = inputs[best.second];
    // At least operand A or B alternates, and so does the carry-in
    // chain stimulus (g or cin).
    EXPECT_TRUE(x.inputA != y.inputA || x.inputB != y.inputB);
}

TEST(Analysis, BestPairBeatsWorstPair)
{
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis an(adder,
                          GuardbandModel::paperCalibrated());
    const auto sweep = an.sweepPairs();
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &e : sweep) {
        lo = std::min(lo, e.narrowFullyStressedFraction);
        hi = std::max(hi, e.narrowFullyStressedFraction);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.05);
}

TEST(Analysis, OperandSamplingCarryInMostlyZero)
{
    // Section 1.1: carry-in is "0" more than 90% of the time.
    WorkloadSet workload;
    TraceGenerator gen = workload.generator(0);
    const auto ops = collectAdderOperands(gen, 2000);
    ASSERT_GT(ops.size(), 1000u);
    std::size_t zero = 0;
    for (const auto &op : ops)
        zero += !op.cin;
    EXPECT_GT(static_cast<double>(zero) / ops.size(), 0.90);
}

TEST(Analysis, GuardbandDropsWithIdleInjection)
{
    // Figure 5 shape: protected guardband < baseline, and lower
    // utilisation means lower guardband.
    WorkloadSet workload;
    TraceGenerator gen = workload.generator(10);
    const auto ops = collectAdderOperands(gen, 1500);
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis an(adder,
                          GuardbandModel::paperCalibrated());
    const auto real = an.zeroProbsForOperands(ops);
    const double baseline = an.baselineGuardband(real);
    const InputPair best = an.bestPair();
    const double g30 = an.scenarioGuardband(real, 0.30, best);
    const double g21 = an.scenarioGuardband(real, 0.21, best);
    const double g11 = an.scenarioGuardband(real, 0.11, best);
    EXPECT_GT(baseline, 0.15);
    EXPECT_LT(g30, baseline);
    EXPECT_LT(g21, g30);
    EXPECT_LT(g11, g21);
    EXPECT_GT(g11, 0.0);
}

} // namespace
} // namespace penelope
