/**
 * @file
 * Property tests for the word-parallel netlist engine: evaluateBatch
 * against scalar evaluate bit-for-bit on random netlists (every gate
 * type, batch sizes 1..128 including partial final batches), batched
 * adder sums against scalar sums, and batched-vs-scalar AgingSummary
 * identity on the Figure-2 circuit and the Ladner-Fischer adder.
 */

#include <gtest/gtest.h>

#include <vector>

#include "adder/adder.hh"
#include "adder/analysis.hh"
#include "adder/idle_inputs.hh"
#include "circuit/aging.hh"
#include "circuit/netlist.hh"
#include "common/bitword.hh"
#include "common/rng.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ------------------------------------------------------ transpose

TEST(Transpose64, MatchesNaiveGather)
{
    Rng rng(0x7a5);
    std::uint64_t in[64];
    std::uint64_t out[64];
    for (int i = 0; i < 64; ++i)
        in[i] = out[i] = rng();
    transpose64x64(out);
    for (unsigned r = 0; r < 64; ++r)
        for (unsigned c = 0; c < 64; ++c)
            ASSERT_EQ((in[r] >> c) & 1, (out[c] >> r) & 1)
                << "row " << r << " col " << c;
}

TEST(Transpose64, InvolutionRestoresInput)
{
    Rng rng(0x7a6);
    std::uint64_t in[64];
    std::uint64_t m[64];
    for (int i = 0; i < 64; ++i)
        in[i] = m[i] = rng();
    transpose64x64(m);
    transpose64x64(m);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(m[i], in[i]);
}

// ------------------------------------------------- random netlists

/**
 * Build a random netlist exercising every builder (primitive and
 * composite, so the compiled stream sees Inv, Nand2/NandK,
 * Nor2/NorK, TgPass and constants).
 */
Netlist
randomNetlist(Rng &rng, unsigned num_inputs, unsigned num_gates)
{
    Netlist n;
    std::vector<SignalId> pool;
    for (unsigned i = 0; i < num_inputs; ++i)
        pool.push_back(n.addInput());
    pool.push_back(n.addConst(false));
    pool.push_back(n.addConst(true));

    const auto pick = [&] {
        return pool[rng.nextInt(
            static_cast<std::uint32_t>(pool.size()))];
    };
    for (unsigned g = 0; g < num_gates; ++g) {
        SignalId out = invalidSignal;
        switch (rng.nextInt(10)) {
          case 0:
            out = n.addInv(pick());
            break;
          case 1:
            out = n.addNand({pick(), pick()});
            break;
          case 2:
            out = n.addNor({pick(), pick()});
            break;
          case 3: {
            // Wide NAND/NOR: 3..5 fanins exercise the K-ary ops.
            std::vector<SignalId> fanin;
            const unsigned k = 3 + rng.nextInt(3);
            for (unsigned i = 0; i < k; ++i)
                fanin.push_back(pick());
            out = rng.nextBool() ? n.addNand(fanin)
                                 : n.addNor(fanin);
            break;
          }
          case 4:
            out = n.addAnd(pick(), pick());
            break;
          case 5:
            out = n.addOr(pick(), pick());
            break;
          case 6:
            out = n.addXor(pick(), pick());
            break;
          case 7:
            out = n.addXnor(pick(), pick());
            break;
          case 8:
            out = n.addMux(pick(), pick(), pick());
            break;
          default:
            out = n.addTgXor(pick(), pick());
            break;
        }
        pool.push_back(out);
    }
    n.finalize();
    return n;
}

/** Scalar-vs-batch identity over @p num_vectors random vectors. */
void
checkBatchMatchesScalar(const Netlist &n, Rng &rng,
                        std::size_t num_vectors)
{
    std::vector<std::vector<bool>> inputs(num_vectors);
    for (auto &v : inputs) {
        v.resize(n.numInputs());
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = rng.nextBool();
    }

    std::vector<std::uint8_t> scalar;
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> input_words(n.numInputs());
    for (std::size_t begin = 0; begin < num_vectors; begin += 64) {
        const std::size_t count =
            std::min<std::size_t>(64, num_vectors - begin);
        for (std::size_t i = 0; i < n.numInputs(); ++i) {
            std::uint64_t w = 0;
            for (std::size_t l = 0; l < count; ++l)
                if (inputs[begin + l][i])
                    w |= std::uint64_t(1) << l;
            input_words[i] = w;
        }
        n.evaluateBatch(input_words.data(), words);
        ASSERT_EQ(words.size(), n.wordCount());
        for (std::size_t l = 0; l < count; ++l) {
            n.evaluate(inputs[begin + l], scalar);
            for (std::size_t s = 0; s < n.numSignals(); ++s) {
                const std::uint64_t lane =
                    n.laneWord(words.data(), s);
                ASSERT_EQ((lane >> l) & 1, scalar[s])
                    << "vector " << begin + l << " net " << s;
            }
        }
    }
}

TEST(NetlistBatch, RandomNetlistsMatchScalar)
{
    Rng rng(0xba7c4);
    for (int trial = 0; trial < 20; ++trial) {
        const unsigned num_inputs = 1 + rng.nextInt(12);
        const unsigned num_gates = 1 + rng.nextInt(60);
        Netlist n = randomNetlist(rng, num_inputs, num_gates);
        // Batch sizes spanning partial, exact and multi-word
        // batches.
        for (std::size_t vectors : {std::size_t(1), std::size_t(7),
                                    std::size_t(64),
                                    std::size_t(65),
                                    std::size_t(128)}) {
            checkBatchMatchesScalar(n, rng, vectors);
        }
    }
}

TEST(NetlistBatch, Figure2MatchesScalar)
{
    Netlist n;
    buildFigure2Circuit(n);
    n.finalize();
    Rng rng(0xf19);
    checkBatchMatchesScalar(n, rng, 100);
}

// ---------------------------------------------------- adder sums

TEST(AdderBatch, SumsMatchScalarEvaluate)
{
    for (unsigned width : {1u, 8u, 13u, 32u, 48u, 64u}) {
        LadnerFischerAdder adder(width);
        const std::uint64_t mask = width >= 64
            ? ~std::uint64_t(0)
            : (std::uint64_t(1) << width) - 1;
        Rng rng(width);
        std::uint64_t a[64];
        std::uint64_t b[64];
        std::uint64_t cin_mask = 0;
        for (int l = 0; l < 64; ++l) {
            a[l] = rng() & mask;
            b[l] = rng() & mask;
            if (rng.nextBool())
                cin_mask |= std::uint64_t(1) << l;
        }
        std::vector<std::uint64_t> words;
        adder.evaluateBatch(a, b, cin_mask, words);
        std::uint64_t sums[64];
        std::uint64_t cout_mask = 0;
        adder.batchSums(words, sums, &cout_mask);
        for (int l = 0; l < 64; ++l) {
            bool cout = false;
            const std::uint64_t expect = adder.evaluate(
                a[l], b[l], (cin_mask >> l) & 1, &cout);
            EXPECT_EQ(sums[l], expect) << "lane " << l;
            EXPECT_EQ((cout_mask >> l) & 1, cout ? 1u : 0u)
                << "lane " << l;
        }
    }
}

TEST(AdderBatch, RippleAndKoggeStoneMatchToo)
{
    RippleCarryAdder rc(24);
    KoggeStoneAdder ks(24);
    for (Adder *adder : {static_cast<Adder *>(&rc),
                         static_cast<Adder *>(&ks)}) {
        Rng rng(0x5eed);
        std::uint64_t a[64];
        std::uint64_t b[64];
        std::uint64_t cin_mask = rng();
        for (int l = 0; l < 64; ++l) {
            a[l] = rng() & 0xffffff;
            b[l] = rng() & 0xffffff;
        }
        std::vector<std::uint64_t> words;
        adder->evaluateBatch(a, b, cin_mask, words);
        std::uint64_t sums[64];
        adder->batchSums(words, sums);
        for (int l = 0; l < 64; ++l) {
            EXPECT_EQ(sums[l],
                      adder->evaluate(a[l], b[l],
                                      (cin_mask >> l) & 1));
        }
    }
}

// -------------------------------------------------- aging identity

/** Exact equality of two summaries (all fields are derived from
 *  integer counts, so batched == scalar must hold bit-for-bit). */
void
expectSummariesIdentical(const AgingSummary &x,
                         const AgingSummary &y)
{
    EXPECT_EQ(x.worstNarrowZeroProb, y.worstNarrowZeroProb);
    EXPECT_EQ(x.worstWideZeroProb, y.worstWideZeroProb);
    EXPECT_EQ(x.narrowFullyStressedFraction,
              y.narrowFullyStressedFraction);
    EXPECT_EQ(x.guardband, y.guardband);
    EXPECT_EQ(x.numDevices, y.numDevices);
    EXPECT_EQ(x.numNarrow, y.numNarrow);
    EXPECT_EQ(x.numWide, y.numWide);
}

TEST(AgingBatch, Figure2SummaryIdentity)
{
    Netlist n;
    buildFigure2Circuit(n);
    n.finalize();

    Rng rng(0xa91);
    const std::size_t num_vectors = 150; // 2 full + 1 partial batch
    std::vector<std::vector<bool>> inputs(num_vectors);
    for (auto &v : inputs)
        v = {rng.nextBool(), rng.nextBool(), rng.nextBool()};

    PmosAgingTracker scalar(n);
    for (const auto &v : inputs)
        scalar.applyInput(v);

    PmosAgingTracker batched(n);
    std::vector<std::uint64_t> words;
    std::vector<std::uint64_t> input_words(n.numInputs());
    for (std::size_t begin = 0; begin < num_vectors; begin += 64) {
        const std::size_t count =
            std::min<std::size_t>(64, num_vectors - begin);
        for (std::size_t i = 0; i < n.numInputs(); ++i) {
            std::uint64_t w = 0;
            for (std::size_t l = 0; l < count; ++l)
                if (inputs[begin + l][i])
                    w |= std::uint64_t(1) << l;
            input_words[i] = w;
        }
        n.evaluateBatch(input_words.data(), words);
        const std::uint64_t lane_mask = count == 64
            ? ~std::uint64_t(0)
            : (std::uint64_t(1) << count) - 1;
        batched.observeBatch(words.data(), lane_mask);
    }

    ASSERT_EQ(scalar.numDevices(), batched.numDevices());
    for (std::size_t i = 0; i < scalar.numDevices(); ++i)
        EXPECT_EQ(scalar.zeroProb(i), batched.zeroProb(i));
    const GuardbandModel model = GuardbandModel::paperCalibrated();
    expectSummariesIdentical(scalar.summarize(model),
                             batched.summarize(model));
}

TEST(AgingBatch, LadnerFischerOperandIdentity)
{
    // The Figure-5 real-input path: batched zeroProbsForOperands
    // must equal one scalar applyInput per sample, bit for bit.
    WorkloadSet workload;
    TraceGenerator gen = workload.generator(2);
    const auto ops = collectAdderOperands(gen, 333);
    ASSERT_FALSE(ops.empty());

    LadnerFischerAdder adder(32);
    AdderAgingAnalysis analysis(adder,
                                GuardbandModel::paperCalibrated());
    const auto batched = analysis.zeroProbsForOperands(ops);

    PmosAgingTracker scalar(adder.netlist());
    std::vector<bool> in;
    for (const auto &op : ops) {
        adder.fillInputVector(in, op.a, op.b, op.cin);
        scalar.applyInput(in);
    }
    ASSERT_EQ(batched.size(), scalar.numDevices());
    for (std::size_t i = 0; i < batched.size(); ++i)
        EXPECT_EQ(batched[i], scalar.zeroProb(i)) << "device " << i;
}

TEST(AgingBatch, SyntheticRotationIdentity)
{
    // zeroProbsForInput / -Pair / -Inputs against scalar
    // round-robin applyInput.
    LadnerFischerAdder adder(16);
    AdderAgingAnalysis analysis(adder,
                                GuardbandModel::paperCalibrated());
    const std::vector<std::vector<unsigned>> rotations = {
        {0}, {7}, {0, 7}, {2, 5}, {0, 7, 3, 4}};
    for (const auto &rotation : rotations) {
        const auto batched = analysis.zeroProbsForInputs(rotation);
        PmosAgingTracker scalar(adder.netlist());
        std::vector<bool> in;
        for (unsigned index : rotation) {
            syntheticVector(adder, index, in);
            scalar.applyInput(in);
        }
        ASSERT_EQ(batched.size(), scalar.numDevices());
        for (std::size_t i = 0; i < batched.size(); ++i)
            EXPECT_EQ(batched[i], scalar.zeroProb(i));
    }
}

TEST(AgingBatch, PairSweepMatchesScalarSweep)
{
    // The single-pass Figure-4 sweep equals 28 scalar two-input
    // sweeps exactly.
    LadnerFischerAdder adder(32);
    const GuardbandModel model = GuardbandModel::paperCalibrated();
    AdderAgingAnalysis analysis(adder, model);
    const auto sweep = analysis.sweepPairs();
    ASSERT_EQ(sweep.size(), 28u);
    std::vector<bool> in;
    for (const auto &entry : sweep) {
        PmosAgingTracker scalar(adder.netlist());
        syntheticVector(adder, entry.pair.first, in);
        scalar.applyInput(in);
        syntheticVector(adder, entry.pair.second, in);
        scalar.applyInput(in);
        const AgingSummary s = scalar.summarize(model);
        EXPECT_EQ(entry.narrowFullyStressedFraction,
                  s.narrowFullyStressedFraction)
            << "pair " << pairLabel(entry.pair);
    }
}

TEST(AgingBatch, ObserveBatchWithDt)
{
    // dt > 1 charges every valid lane dt units, like scalar
    // observes with the same dt.
    Netlist n;
    const SignalId a = n.addInput();
    n.addInv(a);
    n.finalize();

    PmosAgingTracker batched(n);
    std::vector<std::uint64_t> words;
    std::uint64_t zero = 0;
    n.evaluateBatch(&zero, words); // input 0 in every lane
    batched.observeBatch(words.data(), 0x7, 5); // 3 lanes, dt 5
    std::uint64_t ones = ~std::uint64_t(0);
    n.evaluateBatch(&ones, words);
    batched.observeBatch(words.data(), 0x1, 5); // 1 lane, dt 5

    PmosAgingTracker scalar(n);
    for (int i = 0; i < 3; ++i)
        scalar.applyInput({false}, 5);
    scalar.applyInput({true}, 5);
    EXPECT_EQ(batched.zeroProb(0), scalar.zeroProb(0));
    EXPECT_EQ(batched.zeroProb(0), 0.75);
}

// ------------------------------------------------ wide (W words)

TEST(NetlistWide, RandomNetlistsMatchSingleWord)
{
    // Word w of an evaluateBatchWide pass must be bit-for-bit what
    // evaluateBatch over that word's input words produces, for
    // every supported W.
    Rng rng(0x31de);
    for (int trial = 0; trial < 10; ++trial) {
        const unsigned num_inputs = 1 + rng.nextInt(12);
        const unsigned num_gates = 1 + rng.nextInt(60);
        Netlist n = randomNetlist(rng, num_inputs, num_gates);

        std::vector<std::uint64_t> in_flat(n.numInputs() * 8);
        for (auto &w : in_flat)
            w = rng();

        std::vector<std::uint64_t> ref;
        std::vector<std::uint64_t> single(n.numInputs());
        for (unsigned net_w : {1u, 2u, 4u, 8u}) {
            std::vector<std::uint64_t> in(n.numInputs() * net_w);
            for (std::size_t i = 0; i < n.numInputs(); ++i)
                for (unsigned w = 0; w < net_w; ++w)
                    in[i * net_w + w] = in_flat[i * 8 + w];
            std::vector<std::uint64_t> wide;
            n.evaluateBatchWide(in.data(), wide, net_w);
            ASSERT_EQ(wide.size(), n.wordCount() * net_w);
            for (unsigned w = 0; w < net_w; ++w) {
                for (std::size_t i = 0; i < n.numInputs(); ++i)
                    single[i] = in_flat[i * 8 + w];
                n.evaluateBatch(single.data(), ref);
                for (std::size_t s = 0; s < n.numSignals(); ++s) {
                    ASSERT_EQ(
                        n.laneWordWide(wide.data(), net_w, w, s),
                        n.laneWord(ref.data(), s))
                        << "W " << net_w << " word " << w
                        << " net " << s;
                }
            }
        }
    }
}

TEST(AdderWide, MatchesEvaluateBatchPerWord)
{
    LadnerFischerAdder adder(32);
    Rng rng(0xadd3);
    std::uint64_t a[512];
    std::uint64_t b[512];
    std::uint64_t cin_masks[8];
    for (unsigned i = 0; i < 512; ++i) {
        a[i] = rng() & 0xffffffff;
        b[i] = rng() & 0xffffffff;
    }
    for (unsigned w = 0; w < 8; ++w)
        cin_masks[w] = rng();

    const Netlist &n = adder.netlist();
    std::vector<std::uint64_t> ref;
    for (unsigned net_w : {1u, 2u, 4u, 8u}) {
        std::vector<std::uint64_t> wide;
        adder.evaluateBatchWide(a, b, cin_masks, net_w, wide);
        ASSERT_EQ(wide.size(), n.wordCount() * net_w);
        for (unsigned w = 0; w < net_w; ++w) {
            adder.evaluateBatch(a + w * 64, b + w * 64,
                                cin_masks[w], ref);
            for (std::size_t s = 0; s < n.numSignals(); ++s) {
                ASSERT_EQ(n.laneWordWide(wide.data(), net_w, w, s),
                          n.laneWord(ref.data(), s))
                    << "W " << net_w << " word " << w << " net "
                    << s;
            }
        }
    }
}

TEST(AgingWide, ObserveBatchWideIdentity)
{
    // observeBatchWide over W interleaved words == W observeBatch
    // calls, including partial (masked) words.
    Rng rng(0x0b5e);
    Netlist n = randomNetlist(rng, 8, 40);
    std::uint64_t in[8 * 8];
    for (auto &w : in)
        w = rng();
    const std::uint64_t lane_masks[8] = {
        ~std::uint64_t(0), 0x3ff, 0, 0xffff0000ffff0000ull,
        0x1, ~std::uint64_t(0), 0xf0f0, 0};

    for (unsigned net_w : {2u, 4u, 8u}) {
        std::vector<std::uint64_t> interleaved(8 * net_w);
        for (std::size_t i = 0; i < 8; ++i)
            for (unsigned w = 0; w < net_w; ++w)
                interleaved[i * net_w + w] = in[i * 8 + w];
        std::vector<std::uint64_t> wide;
        n.evaluateBatchWide(interleaved.data(), wide, net_w);
        PmosAgingTracker wide_tracker(n);
        wide_tracker.observeBatchWide(wide.data(), net_w,
                                      lane_masks, 3);

        PmosAgingTracker ref_tracker(n);
        std::vector<std::uint64_t> single(8);
        std::vector<std::uint64_t> words;
        for (unsigned w = 0; w < net_w; ++w) {
            for (std::size_t i = 0; i < 8; ++i)
                single[i] = in[i * 8 + w];
            n.evaluateBatch(single.data(), words);
            ref_tracker.observeBatch(words.data(), lane_masks[w],
                                     3);
        }
        for (std::size_t d = 0; d < ref_tracker.numDevices(); ++d) {
            ASSERT_EQ(wide_tracker.zeroProb(d),
                      ref_tracker.zeroProb(d))
                << "W " << net_w << " device " << d;
        }
    }
}

TEST(NetlistWide, PreferredBatchWordsIsSupported)
{
    const unsigned net_w = Netlist::preferredBatchWords();
    EXPECT_TRUE(net_w == 2 || net_w == 4 || net_w == 8);
    if (Netlist::avx512Supported()) {
        EXPECT_EQ(net_w, 8u);
    } else if (Netlist::avx2Supported()) {
        EXPECT_EQ(net_w, 4u);
    } else {
        EXPECT_EQ(net_w, 2u);
    }
}

TEST(AgingBatch, PaddedLanesIgnored)
{
    // Garbage in lanes outside the mask must not leak into the
    // statistics (constants drive every lane).
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId c1 = n.addConst(true);
    n.addNand({a, c1});
    n.addInv(a);
    n.finalize();

    std::vector<std::uint64_t> words;
    const std::uint64_t in = 0x1; // lane 0 = 1, other lanes 0
    n.evaluateBatch(&in, words);
    PmosAgingTracker tracker(n);
    tracker.observeBatch(words.data(), 0x1);
    for (std::size_t i = 0; i < tracker.numDevices(); ++i) {
        // Every gate input is 1 in the one valid lane.
        EXPECT_EQ(tracker.zeroProb(i), 0.0) << "device " << i;
    }
}

} // namespace
} // namespace penelope
