/**
 * @file
 * Tests for the trace library: value generators, suite profiles,
 * the trace generator and the 531-trace workload set.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/duty.hh"
#include "common/stats.hh"
#include "trace/generator.hh"
#include "trace/suite.hh"
#include "trace/value_gen.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ------------------------------------------------------ ValueGens

TEST(IntValueGen, ZeroFractionMatchesProfile)
{
    IntValueProfile p;
    p.zeroProb = 0.30;
    IntValueGen gen(p, Rng(1));
    int zeros = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        zeros += gen.next() == 0;
    EXPECT_NEAR(static_cast<double>(zeros) / n, 0.30, 0.02);
}

TEST(IntValueGen, ValuesAre32Bit)
{
    IntValueGen gen(IntValueProfile{}, Rng(2));
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next() >> 32, 0u);
}

TEST(IntValueGen, BiasLandsInPaperRange)
{
    // Section 1.1: INT per-bit zero probability 65-90%.
    IntValueGen gen(IntValueProfile{}, Rng(3));
    BitBiasTracker bias(32);
    for (int i = 0; i < 50000; ++i)
        bias.observe(gen.next());
    EXPECT_GT(bias.minZeroProbability(), 0.55);
    EXPECT_LT(bias.maxZeroProbability(), 0.97);
    EXPECT_GT(bias.maxZeroProbability(), 0.80);
}

TEST(FpValueGen, EncodeZero)
{
    const BitWord w = FpValueGen::encode(0.0);
    EXPECT_EQ(w.popcount(), 0u);
}

TEST(FpValueGen, EncodeOne)
{
    // 1.0 = sign 0, exponent 16383, integer bit set.
    const BitWord w = FpValueGen::encode(1.0);
    EXPECT_FALSE(w.bit(79));          // sign
    EXPECT_TRUE(w.bit(63));           // explicit integer bit
    EXPECT_EQ(w.hi() & 0x7fff, 16383u);
    EXPECT_EQ(w.lo(), 0x8000000000000000ULL); // fraction zero
}

TEST(FpValueGen, EncodeSignAndMagnitude)
{
    const BitWord pos = FpValueGen::encode(2.5);
    const BitWord neg = FpValueGen::encode(-2.5);
    EXPECT_FALSE(pos.bit(79));
    EXPECT_TRUE(neg.bit(79));
    // Same exponent/mantissa.
    EXPECT_EQ(pos.lo(), neg.lo());
    EXPECT_EQ(pos.hi() & 0x7fff, neg.hi() & 0x7fff);
}

TEST(FpValueGen, ExponentOrdering)
{
    const BitWord small = FpValueGen::encode(0.5);
    const BitWord large = FpValueGen::encode(1024.0);
    EXPECT_LT(small.hi() & 0x7fff, large.hi() & 0x7fff);
}

TEST(FpValueGen, PopulationBiasReasonable)
{
    FpValueGen gen(FpValueProfile{}, Rng(5));
    BitBiasTracker bias(80);
    for (int i = 0; i < 20000; ++i)
        bias.observe(gen.next());
    // Sign bit mostly 0.
    EXPECT_GT(bias.zeroProbability(79), 0.85);
    // No bit permanently stuck at one.
    EXPECT_GT(bias.minZeroProbability(), 0.02);
}

TEST(AddressGen, StaysInWorkingSetPages)
{
    AddressProfile p;
    p.workingSetBytes = 64 * 1024;
    AddressGen gen(p, Rng(7));
    const std::uint64_t lines = p.workingSetBytes / p.lineBytes;
    const std::uint64_t pages =
        (lines + p.linesPerPage - 1) / p.linesPerPage;
    for (int i = 0; i < 10000; ++i) {
        const Addr a = gen.next();
        EXPECT_GE(a, p.base);
        EXPECT_LT((a - p.base) / 4096, pages);
    }
}

TEST(AddressGen, PageFootprintSparse)
{
    AddressProfile p;
    p.workingSetBytes = 32 * 1024; // 512 lines
    AddressGen gen(p, Rng(11));
    std::set<Addr> pages;
    for (int i = 0; i < 50000; ++i)
        pages.insert(gen.next() / 4096);
    // 512 lines at 8 lines/page = 64 pages, far more than the
    // 8 pages dense packing would give.
    EXPECT_GT(pages.size(), 30u);
    EXPECT_LE(pages.size(), 64u);
}

TEST(AddressGen, SpatialLocality)
{
    AddressGen gen(AddressProfile{}, Rng(13));
    std::uint64_t same_line = 0;
    const int n = 20000;
    Addr prev = gen.next();
    for (int i = 0; i < n; ++i) {
        const Addr a = gen.next();
        same_line += (a / 64) == (prev / 64);
        prev = a;
    }
    // meanAccessesPerLine = 4 -> ~3/4 of consecutive pairs share.
    EXPECT_GT(static_cast<double>(same_line) / n, 0.5);
}

TEST(AddressGen, CacheSetsCovered)
{
    AddressGen gen(AddressProfile{}, Rng(17));
    std::set<std::uint64_t> sets;
    for (int i = 0; i < 50000; ++i)
        sets.insert((gen.next() / 64) % 64);
    EXPECT_GT(sets.size(), 48u); // near-uniform over 64 sets
}

// ---------------------------------------------------------- Suite

TEST(Suite, TableOneTotals)
{
    EXPECT_EQ(totalTraceCount(), 531u);
    EXPECT_EQ(allSuites().size(), numSuites);
}

TEST(Suite, TraceCountsMatchTableOne)
{
    const std::map<std::string, unsigned> expected = {
        {"Encoder", 62},      {"SpecFP2000", 41},
        {"SpecINT2000", 33},  {"Kernels", 53},
        {"Multimedia", 85},   {"Office", 75},
        {"Productivity", 45}, {"Server", 55},
        {"Workstation", 49},  {"SPEC2006", 33},
    };
    for (const auto &suite : allSuites()) {
        auto it = expected.find(suite.name);
        ASSERT_NE(it, expected.end()) << suite.name;
        EXPECT_EQ(suite.numTraces, it->second) << suite.name;
    }
}

TEST(Suite, ProfileLookupConsistent)
{
    for (const auto &suite : allSuites())
        EXPECT_EQ(&suiteProfile(suite.id), &suite);
}

TEST(Suite, MixesAreProbabilities)
{
    for (const auto &s : allSuites()) {
        EXPECT_GT(s.loadFrac, 0.0);
        EXPECT_LT(s.loadFrac + s.storeFrac + s.branchFrac, 1.0);
        EXPECT_GE(s.fpFrac, 0.0);
        EXPECT_LE(s.fpFrac, 1.0);
        EXPECT_LT(s.wssBytesMin, s.wssBytesMax);
    }
}

// ------------------------------------------------------ Generator

TEST(Generator, Deterministic)
{
    TraceSpec spec{SuiteId::Office, 3, 12345};
    TraceGenerator a(spec);
    TraceGenerator b(spec);
    for (int i = 0; i < 500; ++i) {
        const Uop x = a.next();
        const Uop y = b.next();
        EXPECT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        EXPECT_EQ(x.dstVal, y.dstVal);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.opcode, y.opcode);
    }
}

TEST(Generator, MixMatchesProfile)
{
    const SuiteProfile &profile = suiteProfile(SuiteId::Server);
    TraceSpec spec{SuiteId::Server, 0, 999};
    TraceGenerator gen(spec);
    std::map<UopClass, int> counts;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];
    EXPECT_NEAR(static_cast<double>(counts[UopClass::Load]) / n,
                profile.loadFrac, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[UopClass::Store]) / n,
                profile.storeFrac, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[UopClass::Branch]) / n,
                profile.branchFrac, 0.02);
}

TEST(Generator, SourceValuesTrackRegisterImages)
{
    TraceSpec spec{SuiteId::SpecInt2000, 1, 77};
    TraceGenerator gen(spec);
    Word images[numArchIntRegs] = {};
    for (int i = 0; i < 5000; ++i) {
        const Uop uop = gen.next();
        if (uop.cls == UopClass::IntAlu ||
            uop.cls == UopClass::IntMul ||
            uop.cls == UopClass::Branch) {
            if (uop.usesSrc1()) {
                EXPECT_EQ(uop.srcVal1, images[uop.srcReg1]);
            }
        }
        if (uop.writesReg() && !isFp(uop.cls))
            images[uop.dstReg] = uop.dstVal;
    }
}

TEST(Generator, MemoryOpsHaveAddressesAndMobIds)
{
    TraceSpec spec{SuiteId::Kernels, 2, 31};
    TraceGenerator gen(spec);
    std::uint8_t last_mob = 0xff;
    for (int i = 0; i < 5000; ++i) {
        const Uop uop = gen.next();
        if (!isMemory(uop.cls))
            continue;
        EXPECT_NE(uop.addr, 0u);
        if (last_mob != 0xff) {
            EXPECT_EQ(uop.mobId, (last_mob + 1) & 0x3f);
        }
        last_mob = uop.mobId;
    }
}

TEST(Generator, LatenciesMatchClasses)
{
    TraceSpec spec{SuiteId::Workstation, 0, 55};
    TraceGenerator gen(spec);
    for (int i = 0; i < 5000; ++i) {
        const Uop uop = gen.next();
        switch (uop.cls) {
          case UopClass::IntAlu:
            EXPECT_EQ(uop.latency, 1);
            break;
          case UopClass::FpMul:
            EXPECT_EQ(uop.latency, 5);
            break;
          case UopClass::Load:
            EXPECT_EQ(uop.latency, 3);
            break;
          default:
            EXPECT_GE(uop.latency, 1);
        }
    }
}

TEST(Generator, FpValuesCarryHighBits)
{
    TraceSpec spec{SuiteId::SpecFp2000, 0, 21};
    TraceGenerator gen(spec);
    bool saw_high = false;
    for (int i = 0; i < 20000 && !saw_high; ++i) {
        const Uop uop = gen.next();
        if (isFp(uop.cls) && uop.dstValHi != 0)
            saw_high = true;
    }
    EXPECT_TRUE(saw_high);
}

TEST(Generator, UopHelpers)
{
    EXPECT_TRUE(isMemory(UopClass::Load));
    EXPECT_TRUE(isMemory(UopClass::Store));
    EXPECT_FALSE(isMemory(UopClass::IntAlu));
    EXPECT_TRUE(isFp(UopClass::FpAdd));
    EXPECT_FALSE(isFp(UopClass::Branch));
    EXPECT_TRUE(usesAdder(UopClass::IntAlu));
    EXPECT_TRUE(usesAdder(UopClass::Load));
    EXPECT_FALSE(usesAdder(UopClass::FpMul));
}

// ------------------------------------------------------- Workload

TEST(Workload, Has531Traces)
{
    WorkloadSet w;
    EXPECT_EQ(w.size(), 531u);
}

TEST(Workload, SeedsUniquePerTrace)
{
    WorkloadSet w;
    std::set<std::uint64_t> seeds;
    for (unsigned i = 0; i < w.size(); ++i)
        seeds.insert(w.spec(i).seed);
    EXPECT_EQ(seeds.size(), w.size());
}

TEST(Workload, SuiteIndexing)
{
    WorkloadSet w;
    const auto office = w.indicesForSuite(SuiteId::Office);
    EXPECT_EQ(office.size(), 75u);
    for (unsigned idx : office)
        EXPECT_EQ(static_cast<int>(w.spec(idx).suite),
                  static_cast<int>(SuiteId::Office));
}

TEST(Workload, GenerateIsReproducible)
{
    WorkloadSet w;
    const Trace a = w.generate(100, 50);
    const Trace b = w.generate(100, 50);
    ASSERT_EQ(a.uops.size(), b.uops.size());
    for (std::size_t i = 0; i < a.uops.size(); ++i)
        EXPECT_EQ(a.uops[i].dstVal, b.uops[i].dstVal);
}

TEST(Workload, SampleIndicesDeterministicAndUnique)
{
    WorkloadSet w;
    const auto s1 = w.sampleIndices(100, 42);
    const auto s2 = w.sampleIndices(100, 42);
    EXPECT_EQ(s1, s2);
    std::set<unsigned> unique(s1.begin(), s1.end());
    EXPECT_EQ(unique.size(), 100u);
    const auto s3 = w.sampleIndices(100, 43);
    EXPECT_NE(s1, s3);
}

TEST(Workload, ComplementPartitions)
{
    WorkloadSet w;
    const auto subset = w.sampleIndices(100, 7);
    const auto rest = w.complement(subset);
    EXPECT_EQ(subset.size() + rest.size(), w.size());
    std::set<unsigned> all(subset.begin(), subset.end());
    all.insert(rest.begin(), rest.end());
    EXPECT_EQ(all.size(), w.size());
}

TEST(Workload, FirstPerSuiteCoversAllSuites)
{
    WorkloadSet w;
    const auto firsts = w.firstPerSuite();
    EXPECT_EQ(firsts.size(), numSuites);
    std::set<int> suites;
    for (unsigned idx : firsts)
        suites.insert(static_cast<int>(w.spec(idx).suite));
    EXPECT_EQ(suites.size(), numSuites);
}

TEST(Workload, StridedSubset)
{
    WorkloadSet w;
    const auto s = w.strided(10);
    EXPECT_EQ(s.size(), 54u); // ceil(531/10)
    EXPECT_EQ(s.front(), 0u);
    EXPECT_EQ(s[1], 10u);
}

/** Parameterised sweep: every suite generates valid traces. */
class SuiteTraceTest
    : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SuiteTraceTest, GeneratesConsistentUops)
{
    const auto suite_id = static_cast<SuiteId>(GetParam());
    TraceSpec spec{suite_id, 0, 1000 + GetParam()};
    TraceGenerator gen(spec);
    for (int i = 0; i < 2000; ++i) {
        const Uop uop = gen.next();
        EXPECT_LT(uop.port, 5);
        EXPECT_LE(uop.latency, 8);
        if (uop.writesReg()) {
            if (isFp(uop.cls))
                EXPECT_LT(uop.dstReg, numArchFpRegs);
            else
                EXPECT_LT(uop.dstReg, numArchIntRegs);
        }
        if (uop.hasImm) {
            EXPECT_TRUE(uop.cls == UopClass::IntAlu ||
                        uop.cls == UopClass::IntMul);
        }
        EXPECT_LT(uop.mobId, 64);
        EXPECT_LT(uop.tos, 8);
        EXPECT_LT(uop.opcode, 1u << 12);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSuites, SuiteTraceTest,
                         ::testing::Range(0u, numSuites));

} // namespace
} // namespace penelope
