/**
 * @file
 * Integration tests for the out-of-order pipeline model and the
 * experiment runners built on it.
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"
#include "pipeline/pipeline.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

TEST(Pipeline, RunsToCompletion)
{
    WorkloadSet w;
    Pipeline pipe{PipelineConfig()};
    TraceGenerator gen = w.generator(0);
    const PipelineStats s = pipe.run(gen, 10000);
    EXPECT_EQ(s.uops, 10000u);
    EXPECT_GT(s.cycles, 2000u);
    EXPECT_GT(s.cpi, 0.3);
    EXPECT_LT(s.cpi, 6.0);
}

TEST(Pipeline, StatsInPhysicalRange)
{
    WorkloadSet w;
    Pipeline pipe{PipelineConfig()};
    TraceGenerator gen = w.generator(20);
    const PipelineStats s = pipe.run(gen, 15000);
    for (double u : s.adderUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    EXPECT_GT(s.intRfOccupancy, 0.1);
    EXPECT_LT(s.intRfOccupancy, 1.0);
    EXPECT_GT(s.schedOccupancy, 0.0);
    EXPECT_LE(s.schedOccupancy, 1.0);
    EXPECT_GT(s.intRfPortFree, 0.5);
    EXPECT_GT(s.dl0Hits + s.dl0Misses, 1000u);
    EXPECT_NEAR(s.mruHitFraction[0] + s.mruHitFraction[1] +
                    s.mruHitFraction[2],
                1.0, 1e-6);
}

TEST(Pipeline, PriorityPolicySkewsAdders)
{
    WorkloadSet w;
    PipelineConfig pri;
    pri.adderPolicy = AdderAllocationPolicy::Priority;
    Pipeline p1(pri);
    TraceGenerator g1 = w.generator(0);
    const PipelineStats s1 = p1.run(g1, 20000);

    PipelineConfig uni;
    uni.adderPolicy = AdderAllocationPolicy::Uniform;
    Pipeline p2(uni);
    TraceGenerator g2 = w.generator(0);
    const PipelineStats s2 = p2.run(g2, 20000);

    // Priority: port 0 does far more IntAlu work than port 1.
    EXPECT_GT(s1.adderUtilization[0],
              2.0 * s1.adderUtilization[1]);
    // Uniform: the two integer adders are balanced.
    EXPECT_NEAR(s2.adderUtilization[0], s2.adderUtilization[1],
                0.03);
}

TEST(Pipeline, CacheMechanismCostsCycles)
{
    WorkloadSet w;
    // A Server-suite trace with a large working set.
    const auto server = w.indicesForSuite(SuiteId::Server);
    PipelineConfig base;
    Pipeline p1(base);
    TraceGenerator g1 = w.generator(server[1]);
    const PipelineStats s1 = p1.run(g1, 20000);

    PipelineConfig mech = base;
    mech.dl0Mechanism = MechanismKind::SetFixed50;
    Pipeline p2(mech);
    TraceGenerator g2 = w.generator(server[1]);
    const PipelineStats s2 = p2.run(g2, 20000);

    EXPECT_GE(s2.dl0Misses, s1.dl0Misses);
    EXPECT_GE(s2.cycles, s1.cycles * 0.99);
}

TEST(Pipeline, IsvProtectionBalancesRegisterFile)
{
    WorkloadSet w;
    PipelineConfig cfg;
    cfg.intRfIsv = true;
    cfg.fpRfIsv = true;
    Pipeline pipe(cfg);
    TraceGenerator gen = w.generator(4);
    const PipelineStats s = pipe.run(gen, 30000);
    const BitBiasTracker &bias =
        pipe.intRf().finalizeBias(s.cycles);
    EXPECT_LT(bias.maxWorstCaseStress(), 0.75);
}

TEST(Pipeline, SchedulerProtectionInPipeline)
{
    WorkloadSet w;
    const SchedulerProfile profile =
        profileScheduler(w, {0, 200}, 10000);
    PipelineConfig cfg;
    Pipeline pipe(cfg);
    pipe.configureSchedulerProtection(
        decideProtection(profile.bits));
    TraceGenerator gen = w.generator(30);
    const PipelineStats s = pipe.run(gen, 20000);
    EXPECT_TRUE(pipe.scheduler().protectionEnabled());
    EXPECT_GT(s.cycles, 0u);
}

// --------------------------------------------------- Experiments

TEST(Experiments, AdderEndToEnd)
{
    WorkloadSet w;
    ExperimentOptions opt;
    opt.traceStride = 96;
    opt.uopsPerTrace = 8000;
    opt.adderOperandSamples = 600;
    const auto r = runAdderExperiment(w, opt);
    EXPECT_EQ(r.pairSweep.size(), 28u);
    EXPECT_GT(r.baselineGuardband, 0.12);
    ASSERT_EQ(r.scenarios.size(), 3u);
    // Figure-5 ordering: 30% > 21% > 11% utilisation guardbands.
    EXPECT_GT(r.scenarios[0].guardband, r.scenarios[1].guardband);
    EXPECT_GT(r.scenarios[1].guardband, r.scenarios[2].guardband);
    EXPECT_LT(r.scenarios[0].guardband, r.baselineGuardband);
    EXPECT_GT(r.efficiency, 1.0);
    EXPECT_LT(r.efficiency, nbtiEfficiency(1.0, 0.20, 1.0));
}

TEST(Experiments, RegFileEndToEnd)
{
    WorkloadSet w;
    ExperimentOptions opt;
    opt.traceStride = 64;
    opt.uopsPerTrace = 15000;
    const auto r = runRegFileExperiment(w, false, opt);
    EXPECT_EQ(r.baselineBias.size(), 32u);
    EXPECT_EQ(r.isvBias.size(), 32u);
    EXPECT_GT(r.baselineWorst, 0.75);
    EXPECT_LT(r.isvWorst, 0.60);
    EXPECT_LT(r.guardbandIsv, r.guardbandBaseline);
    EXPECT_NEAR(r.freeFraction, 0.54, 0.12);
}

TEST(Experiments, SchedulerEndToEnd)
{
    WorkloadSet w;
    ExperimentOptions opt;
    opt.traceStride = 96;
    opt.uopsPerTrace = 10000;
    const auto r = runSchedulerExperiment(w, opt);
    EXPECT_EQ(r.baselineBias.size(), fieldLayout().totalBits());
    EXPECT_GT(r.baselineWorstFig8, 0.9);
    // Paper: 63.2% residual (ALL1 bits + valid bit).
    EXPECT_NEAR(r.protectedWorstFig8, 0.632, 0.06);
    EXPECT_NEAR(r.occupancy, 0.63, 0.08);
    EXPECT_LT(r.guardband, 0.09);
}

TEST(Experiments, ProcessorSummaryOrdering)
{
    WorkloadSet w;
    ExperimentOptions opt;
    opt.traceStride = 96;
    opt.uopsPerTrace = 8000;
    opt.cacheUops = 15000;
    opt.adderOperandSamples = 600;
    const auto adder = runAdderExperiment(w, opt);
    const auto int_rf = runRegFileExperiment(w, false, opt);
    const auto fp_rf = runRegFileExperiment(w, true, opt);
    const auto sched = runSchedulerExperiment(w, opt);
    const auto summary = buildProcessorSummary(
        adder, int_rf, fp_rf, sched, w, opt);

    EXPECT_EQ(summary.blocks.size(), 5u);
    EXPECT_NEAR(summary.baselineEfficiency, 1.728, 1e-3);
    EXPECT_NEAR(summary.invertEfficiency, 1.413, 1e-3);
    // Penelope beats paying the full guardband.
    EXPECT_LT(summary.penelopeEfficiencyDynamic,
              summary.baselineEfficiency);
    // With the best cache mechanism it also beats inverting.
    EXPECT_LT(summary.penelopeEfficiencyDynamic,
              summary.invertEfficiency);
    EXPECT_GT(summary.maxGuardband, 0.04);
    EXPECT_LT(summary.maxGuardband, 0.10);
}

} // namespace
} // namespace penelope
