/**
 * @file
 * The observability layer: thread-local shard merge determinism,
 * histogram bucket laws, the span tracer's Chrome-trace output,
 * the snapshot wire codec, and the runtime-off guarantees.
 *
 * Every count assertion is gated on obs::kCompiledIn so the suite
 * also passes -- exercising the empty inline bodies -- under a
 * -DPENELOPE_NO_OBS=ON build.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/threadpool.hh"
#include "core/resultcache.hh"
#include "obs/exposition.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace penelope;

namespace {

std::uint64_t
counterValue(const obs::Snapshot &snap, const std::string &name)
{
    const obs::SnapshotMetric *m = snap.find(name);
    return m ? m->scalar() : 0;
}

// ------------------------------------------------- registry basics

TEST(ObsRegistry, CounterAccumulatesWhenEnabled)
{
    const obs::ScopedEnable enable;
    const obs::Counter c =
        obs::Registry::instance().counter("test.basic_counter");
    const std::uint64_t before = counterValue(
        obs::Registry::instance().scrape(), "test.basic_counter");
    c.add();
    c.add(41);
    const std::uint64_t after = counterValue(
        obs::Registry::instance().scrape(), "test.basic_counter");
    if (obs::kCompiledIn)
        EXPECT_EQ(after - before, 42u);
    else
        EXPECT_EQ(after, 0u);
}

TEST(ObsRegistry, RegistrationIsIdempotentByName)
{
    const obs::Counter a =
        obs::Registry::instance().counter("test.same_name");
    const obs::Counter b =
        obs::Registry::instance().counter("test.same_name");
    const obs::ScopedEnable enable;
    a.add(3);
    b.add(4);
    const std::uint64_t v = counterValue(
        obs::Registry::instance().scrape(), "test.same_name");
    if (obs::kCompiledIn) {
        EXPECT_GE(v, 7u); // one series, both handles feed it
    }
}

TEST(ObsRegistry, RuntimeOffLeavesRegistryUntouched)
{
    const obs::Counter c =
        obs::Registry::instance().counter("test.off_counter");
    const obs::Histogram h =
        obs::Registry::instance().histogram("test.off_hist", "us");
    const obs::Gauge g =
        obs::Registry::instance().gauge("test.off_gauge");
    const obs::Snapshot before = obs::Registry::instance().scrape();
    {
        const obs::ScopedEnable disable(false);
        c.add(1000);
        h.record(1000);
        g.set(1000);
    }
    const obs::Snapshot after = obs::Registry::instance().scrape();
    EXPECT_EQ(counterValue(before, "test.off_counter"),
              counterValue(after, "test.off_counter"));
    EXPECT_EQ(counterValue(before, "test.off_gauge"),
              counterValue(after, "test.off_gauge"));
    const obs::SnapshotMetric *hb = before.find("test.off_hist");
    const obs::SnapshotMetric *ha = after.find("test.off_hist");
    ASSERT_TRUE(hb != nullptr && ha != nullptr);
    EXPECT_EQ(hb->count(), ha->count());
}

TEST(ObsRegistry, GaugeSetAndAdd)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP();
    const obs::ScopedEnable enable;
    const obs::Gauge g =
        obs::Registry::instance().gauge("test.gauge");
    g.set(7);
    g.add(-3);
    const obs::Snapshot snap = obs::Registry::instance().scrape();
    const obs::SnapshotMetric *m = snap.find("test.gauge");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(static_cast<std::int64_t>(m->scalar()), 4);
    g.set(0); // leave a clean value for other suites
}

// --------------------------------------- shard merge determinism

/** Hammer one counter and one histogram from a contended pool:
 *  the scrape must account for every single emission -- totals are
 *  exact, not approximate -- including emissions from pool threads
 *  that have since retired their shards. */
TEST(ObsShards, MergeIsExactUnderContention)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP();
    const obs::ScopedEnable enable;
    const obs::Counter c =
        obs::Registry::instance().counter("test.contended");
    const obs::Histogram h =
        obs::Registry::instance().histogram("test.contended_hist");
    const obs::Snapshot before =
        obs::Registry::instance().scrape();
    const std::uint64_t c0 = counterValue(before, "test.contended");
    const obs::SnapshotMetric *h0 =
        before.find("test.contended_hist");
    ASSERT_NE(h0, nullptr);
    const std::uint64_t hc0 = h0->count();
    const std::uint64_t hs0 = h0->sum();

    constexpr std::size_t kTasks = 64;
    constexpr std::uint64_t kPerTask = 2000;
    {
        ThreadPool pool(8);
        parallelFor(
            kTasks, 8,
            [&](std::size_t k) {
                for (std::uint64_t i = 0; i < kPerTask; ++i) {
                    c.add();
                    h.record(k + 1);
                }
                // Mid-run scrapes must never lose emissions
                // (they merge live shards without zeroing them).
                if (k % 16 == 0)
                    (void)obs::Registry::instance().scrape();
            },
            &pool);
        // Pool destruction retires every worker shard: the merge
        // below draws from retired totals, not live shards.
    }

    const obs::Snapshot snap = obs::Registry::instance().scrape();
    EXPECT_EQ(counterValue(snap, "test.contended") - c0,
              kTasks * kPerTask);
    const obs::SnapshotMetric *h1 =
        snap.find("test.contended_hist");
    ASSERT_NE(h1, nullptr);
    EXPECT_EQ(h1->count() - hc0, kTasks * kPerTask);
    std::uint64_t expected_sum = 0;
    for (std::size_t k = 0; k < kTasks; ++k)
        expected_sum += (k + 1) * kPerTask;
    EXPECT_EQ(h1->sum() - hs0, expected_sum);
}

/** A thread that exits hands its shard to the retired totals and
 *  the free list; a later thread reuses the shard starting from
 *  zero.  Nothing is double-counted. */
TEST(ObsShards, ThreadExitRetiresWithoutLoss)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP();
    const obs::ScopedEnable enable;
    const obs::Counter c =
        obs::Registry::instance().counter("test.retire");
    const std::uint64_t before = counterValue(
        obs::Registry::instance().scrape(), "test.retire");
    for (int round = 0; round < 4; ++round) {
        std::thread t([&] { c.add(100); });
        t.join();
    }
    EXPECT_EQ(counterValue(obs::Registry::instance().scrape(),
                           "test.retire") -
                  before,
              400u);
}

// --------------------------------------------- histogram geometry

TEST(ObsHistogram, BucketIndexLaws)
{
    // bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
    EXPECT_EQ(obs::bucketIndex(0), 0u);
    EXPECT_EQ(obs::bucketIndex(1), 1u);
    EXPECT_EQ(obs::bucketIndex(2), 2u);
    EXPECT_EQ(obs::bucketIndex(3), 2u);
    EXPECT_EQ(obs::bucketIndex(4), 3u);
    for (unsigned b = 1; b < 64; ++b) {
        const std::uint64_t lo = std::uint64_t(1) << (b - 1);
        EXPECT_EQ(obs::bucketIndex(lo), b);
        EXPECT_EQ(obs::bucketIndex(2 * lo - 1), b);
    }
    EXPECT_EQ(obs::bucketIndex(~std::uint64_t(0)), 64u);
    EXPECT_LT(obs::bucketIndex(~std::uint64_t(0)),
              obs::kHistBuckets);
}

TEST(ObsHistogram, BucketBoundIsInclusiveUpperEdge)
{
    EXPECT_EQ(obs::bucketBound(0), 0u);
    EXPECT_EQ(obs::bucketBound(1), 1u);
    EXPECT_EQ(obs::bucketBound(2), 3u);
    EXPECT_EQ(obs::bucketBound(10), 1023u);
    EXPECT_EQ(obs::bucketBound(64), ~std::uint64_t(0));
    for (unsigned b = 0; b + 1 < obs::kHistBuckets; ++b) {
        // Every value in bucket b is <= bound(b) < values of b+1.
        EXPECT_EQ(obs::bucketIndex(obs::bucketBound(b)), b);
        EXPECT_EQ(obs::bucketIndex(obs::bucketBound(b) + 1),
                  b + 1);
    }
}

TEST(ObsHistogram, RecordFillsBucketAndSum)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP();
    const obs::ScopedEnable enable;
    const obs::Histogram h =
        obs::Registry::instance().histogram("test.hist_fill");
    const obs::Snapshot before =
        obs::Registry::instance().scrape();
    const obs::SnapshotMetric *b0 = before.find("test.hist_fill");
    ASSERT_NE(b0, nullptr);
    h.record(0);
    h.record(5); // bucket 3 = [4, 8)
    h.record(5);
    const obs::Snapshot after = obs::Registry::instance().scrape();
    const obs::SnapshotMetric *m = after.find("test.hist_fill");
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->values.size(), obs::kHistSlots);
    EXPECT_EQ(m->values[0] - b0->values[0], 1u);
    EXPECT_EQ(m->values[3] - b0->values[3], 2u);
    EXPECT_EQ(m->count() - b0->count(), 3u);
    EXPECT_EQ(m->sum() - b0->sum(), 10u);
}

// ------------------------------------------------- snapshot codec

obs::Snapshot
sampleSnapshot()
{
    obs::Snapshot snap;
    obs::SnapshotMetric c;
    c.name = "a.counter";
    c.kind = obs::MetricKind::Counter;
    c.unit = "1";
    c.values = {123};
    snap.metrics.push_back(c);
    obs::SnapshotMetric g;
    g.name = "b.gauge";
    g.kind = obs::MetricKind::Gauge;
    g.unit = "bytes";
    g.values = {static_cast<std::uint64_t>(-5)};
    snap.metrics.push_back(g);
    obs::SnapshotMetric h;
    h.name = "c.hist";
    h.kind = obs::MetricKind::Histogram;
    h.unit = "us";
    h.values.assign(obs::kHistSlots, 0);
    h.values[3] = 7;
    h.values[obs::kHistSlots - 1] = 35;
    snap.metrics.push_back(h);
    return snap;
}

TEST(ObsSnapshotCodec, RoundTrips)
{
    const obs::Snapshot snap = sampleSnapshot();
    const std::string bytes = snap.encodeToBytes();
    obs::Snapshot back;
    ASSERT_TRUE(obs::Snapshot::decodeFromBytes(bytes, back));
    EXPECT_EQ(snap, back);
}

TEST(ObsSnapshotCodec, EveryTruncationIsRejected)
{
    const std::string bytes = sampleSnapshot().encodeToBytes();
    ASSERT_GT(bytes.size(), 1u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        obs::Snapshot out;
        EXPECT_FALSE(obs::Snapshot::decodeFromBytes(
            std::string_view(bytes).substr(0, len), out))
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(ObsSnapshotCodec, TrailingGarbageIsRejected)
{
    std::string bytes = sampleSnapshot().encodeToBytes();
    bytes.push_back('\0');
    obs::Snapshot out;
    EXPECT_FALSE(obs::Snapshot::decodeFromBytes(bytes, out));
}

TEST(ObsSnapshotCodec, ForeignVersionAndBadKindRejected)
{
    std::string bytes = sampleSnapshot().encodeToBytes();
    obs::Snapshot out;
    {
        std::string v = bytes;
        v[0] = 99; // version byte
        EXPECT_FALSE(obs::Snapshot::decodeFromBytes(v, out));
    }
    {
        std::string v = bytes;
        v[5] = 17; // first metric's kind byte
        EXPECT_FALSE(obs::Snapshot::decodeFromBytes(v, out));
    }
}

TEST(ObsSnapshotCodec, EmptySnapshotRoundTrips)
{
    const obs::Snapshot snap;
    obs::Snapshot back;
    back.metrics.push_back(obs::SnapshotMetric{});
    ASSERT_TRUE(
        obs::Snapshot::decodeFromBytes(snap.encodeToBytes(), back));
    EXPECT_TRUE(back.metrics.empty());
}

// ------------------------------------------------------ exposition

TEST(ObsExposition, PrometheusRendering)
{
    const std::string text =
        obs::renderPrometheus(sampleSnapshot());
    EXPECT_NE(text.find("# TYPE penelope_a_counter counter"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_a_counter 123"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_b_gauge -5"), std::string::npos);
    // values[3] = 7 falls in bucket 3 = [4, 8), inclusive le = 7.
    EXPECT_NE(text.find("penelope_c_hist_bucket{le=\"7\"} 7"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_c_hist_bucket{le=\"+Inf\"} 7"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_c_hist_sum 35"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_c_hist_count 7"),
              std::string::npos);
}

TEST(ObsExposition, LabeledSeriesSitSideBySide)
{
    const obs::LabeledSnapshots extras = {
        {"worker=\"0\"", sampleSnapshot()},
        {"worker=\"1\"", sampleSnapshot()},
    };
    const std::string text =
        obs::renderPrometheusAll(obs::Snapshot{}, extras);
    EXPECT_NE(text.find("penelope_a_counter{worker=\"0\"} 123"),
              std::string::npos);
    EXPECT_NE(text.find("penelope_a_counter{worker=\"1\"} 123"),
              std::string::npos);
    // One TYPE header per metric, not per label set.
    const std::string type_line = "# TYPE penelope_a_counter";
    const std::size_t first = text.find(type_line);
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

TEST(ObsExposition, DumpIsSortedAndPrefixed)
{
    const std::string text = obs::renderDump(sampleSnapshot());
    std::istringstream in(text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
        ASSERT_EQ(line.rfind("obs: ", 0), 0u) << line;
        lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    EXPECT_TRUE(std::is_sorted(lines.begin(), lines.end()));
}

// ------------------------------------------------------ span tracer

/** Minimal JSON validity check for one trace line: balanced
 *  braces/brackets outside strings, no control characters.  The CI
 *  step runs the real file through jq; this keeps the unit suite
 *  self-contained. */
bool
lineIsPlausibleJson(const std::string &line)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (static_cast<unsigned char>(ch) < 0x20)
            return false;
        if (in_string) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        if (ch == '"') {
            in_string = true;
        } else if (ch == '{' || ch == '[') {
            ++depth;
        } else if (ch == '}' || ch == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return !in_string && depth == 0;
}

TEST(ObsTracer, EmitsLoadableChromeTrace)
{
    const std::string path = "obs_trace_test.json";
    std::string error;
    ASSERT_TRUE(obs::Tracer::instance().open(path, &error))
        << error;
    {
        const obs::ScopedSpan outer("outer", "test");
        {
            const obs::ScopedSpan inner("inner", "test");
        }
    }
    std::thread t([] {
        const obs::ScopedSpan other("other-thread", "test");
    });
    t.join();
    obs::Tracer::instance().close();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    in.close();
    std::remove(path.c_str());

    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines.front(), "[");
    EXPECT_EQ(lines.back(), "]");

    std::size_t spans = 0;
    bool saw_inner = false, saw_outer = false, saw_other = false;
    std::uint64_t inner_ts = 0, inner_end = 0;
    std::uint64_t outer_ts = 0, outer_end = 0;
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        std::string body = lines[i];
        ASSERT_FALSE(body.empty());
        if (body.back() == ',')
            body.pop_back();
        EXPECT_TRUE(lineIsPlausibleJson(body)) << body;
        if (body == "{}")
            continue; // the close sentinel
        ++spans;
        const auto field = [&body](const char *key) {
            const std::string needle =
                "\"" + std::string(key) + "\":";
            const std::size_t at = body.find(needle);
            EXPECT_NE(at, std::string::npos) << key << body;
            return at == std::string::npos
                ? std::uint64_t(0)
                : std::strtoull(
                      body.c_str() + at + needle.size(), nullptr,
                      10);
        };
        EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
        if (body.find("\"name\":\"inner\"") != std::string::npos) {
            saw_inner = true;
            inner_ts = field("ts");
            inner_end = inner_ts + field("dur");
        } else if (body.find("\"name\":\"outer\"") !=
                   std::string::npos) {
            saw_outer = true;
            outer_ts = field("ts");
            outer_end = outer_ts + field("dur");
        } else if (body.find("\"name\":\"other-thread\"") !=
                   std::string::npos) {
            saw_other = true;
            EXPECT_EQ(body.find("\"tid\":1"), std::string::npos)
                << "spans of another thread must carry their own "
                   "tid: "
                << body;
        }
    }
    if (!obs::kCompiledIn) {
        EXPECT_EQ(spans, 0u);
        return;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_TRUE(saw_inner && saw_outer && saw_other);
    // Nesting: the inner span lies within the outer one.
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_end, outer_end);
}

TEST(ObsTracer, InactiveTracerCostsNothingAndCloseIsIdempotent)
{
    obs::Tracer::instance().close(); // no open(): a no-op
    EXPECT_FALSE(obs::Tracer::instance().active());
    {
        const obs::ScopedSpan span("ignored", "test");
    }
    obs::Tracer::instance().close();
}

} // namespace
