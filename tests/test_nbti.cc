/**
 * @file
 * Tests for the NBTI physics library: RD dynamics, long-term model,
 * guardband/Vmin calibration and the NBTIefficiency metric.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nbti/efficiency.hh"
#include "nbti/guardband.hh"
#include "nbti/long_term.hh"
#include "nbti/rd_model.hh"

namespace penelope {
namespace {

// -------------------------------------------------------- RdModel

TEST(RdModel, StartsPristine)
{
    RdModel m;
    EXPECT_DOUBLE_EQ(m.nit(), 0.0);
    EXPECT_DOUBLE_EQ(m.vthShift(), 0.0);
    EXPECT_DOUBLE_EQ(m.elapsedSeconds(), 0.0);
}

TEST(RdModel, StressIncreasesNit)
{
    RdModel m;
    m.stress(1e6);
    EXPECT_GT(m.nit(), 0.0);
    const double first = m.nit();
    m.stress(1e6);
    EXPECT_GT(m.nit(), first);
}

TEST(RdModel, DegradationRateDecreases)
{
    // Paper, Fig. 1: degradation speed decreases as traps build up.
    RdModel m;
    m.stress(1e7);
    const double d1 = m.nit();
    m.stress(1e7);
    const double d2 = m.nit() - d1;
    EXPECT_LT(d2, d1);
}

TEST(RdModel, RecoveryNeverCompletes)
{
    // Paper, 2.2: full recovery only after infinite relaxation.
    RdModel m;
    m.stress(1e7);
    m.relax(1e9);
    EXPECT_GT(m.nit(), 0.0);
    EXPECT_LT(m.nit(), 1e-3);
}

TEST(RdModel, RecoveryFasterWithMoreTraps)
{
    RdModelParams p;
    RdModel heavy(p);
    heavy.stress(5e7);
    RdModel light(p);
    light.stress(5e6);
    const double heavy_before = heavy.nit();
    const double light_before = light.nit();
    heavy.relax(1e6);
    light.relax(1e6);
    // Absolute recovery is larger for the more-degraded device.
    EXPECT_GT(heavy_before - heavy.nit(),
              light_before - light.nit());
}

TEST(RdModel, SaturatesAtMaxNit)
{
    RdModel m;
    m.stress(1e12);
    EXPECT_NEAR(m.fractionDegraded(), 1.0, 1e-6);
    EXPECT_NEAR(m.vthShift(), m.params().vthShiftAtMaxNit, 1e-6);
}

TEST(RdModel, AnalyticStepInvariance)
{
    // Closed-form updates: one long step == many short steps.
    RdModel a;
    RdModel b;
    a.stress(1e6);
    for (int i = 0; i < 1000; ++i)
        b.stress(1e3);
    EXPECT_NEAR(a.nit(), b.nit(), 1e-12);
}

TEST(RdModel, TemperatureAccelerates)
{
    RdModelParams hot;
    hot.temperature = 398.0;
    RdModelParams cold;
    cold.temperature = 318.0;
    RdModel h(hot);
    RdModel c(cold);
    h.stress(1e6);
    c.stress(1e6);
    EXPECT_GT(h.nit(), c.nit());
}

TEST(RdModel, VoltageAccelerates)
{
    RdModelParams high;
    high.stressVoltage = 1.3;
    RdModelParams low;
    low.stressVoltage = 0.9;
    RdModel h(high);
    RdModel l(low);
    h.stress(1e6);
    l.stress(1e6);
    EXPECT_GT(h.nit(), l.nit());
}

TEST(RdModel, EquilibriumLinearWithEqualRates)
{
    for (double alpha : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        EXPECT_NEAR(RdModel::equilibriumFraction(alpha), alpha,
                    1e-12);
    }
}

TEST(RdModel, EquilibriumReachedBySimulation)
{
    RdModelParams p;
    p.kForward = 1e-4;
    p.kReverse = 1e-4;
    RdModel m(p);
    // 30% duty cycle square wave until convergence.
    for (int i = 0; i < 20000; ++i) {
        m.stress(30.0);
        m.relax(70.0);
    }
    EXPECT_NEAR(m.fractionDegraded(), 0.3, 0.02);
    EXPECT_NEAR(m.stressFraction(), 0.3, 1e-9);
}

TEST(RdModel, ObserveMapsGateLevel)
{
    RdModel a;
    a.observe(false, 100.0); // gate "0" = stress
    RdModel b;
    b.stress(100.0);
    EXPECT_DOUBLE_EQ(a.nit(), b.nit());
}

TEST(RdModel, ResetRestoresPristine)
{
    RdModel m;
    m.stress(1e6);
    m.reset();
    EXPECT_DOUBLE_EQ(m.nit(), 0.0);
    EXPECT_DOUBLE_EQ(m.elapsedSeconds(), 0.0);
}

// ------------------------------------------------------- LongTerm

TEST(LongTerm, TenXReductionAtHalfDuty)
{
    LongTermModel m;
    const double full = m.endOfLifeShift(1.0);
    const double half = m.endOfLifeShift(0.5);
    EXPECT_NEAR(full / half, 10.0, 1e-9);
}

TEST(LongTerm, EndOfLifeCalibration)
{
    LongTermModel m;
    // 10% relative shift at design lifetime under DC stress.
    EXPECT_NEAR(m.endOfLifeShift(1.0), 0.1, 1e-12);
}

TEST(LongTerm, ShiftMonotoneInTimeAndDuty)
{
    LongTermModel m;
    EXPECT_LT(m.vthShift(0.5, 1e6), m.vthShift(0.5, 1e8));
    EXPECT_LT(m.vthShift(0.3, 1e8), m.vthShift(0.9, 1e8));
}

TEST(LongTerm, ZeroDutyNeverDegrades)
{
    LongTermModel m;
    EXPECT_DOUBLE_EQ(m.vthShift(0.0, 1e9), 0.0);
    EXPECT_TRUE(std::isinf(m.lifetime(0.0, 0.1)));
}

TEST(LongTerm, LifetimeInverseOfShift)
{
    LongTermModel m;
    const double limit = 0.05;
    const double t = m.lifetime(0.7, limit);
    EXPECT_NEAR(m.vthShift(0.7, t), limit, 1e-9);
}

TEST(LongTerm, LifetimeGainAtLeast4x)
{
    // Paper quotes >= 4X lifetime from duty-cycle reduction [4].
    LongTermModel m;
    EXPECT_GE(m.lifetimeGain(1.0, 0.5), 4.0);
}

// ------------------------------------------------------ Guardband

TEST(Guardband, PaperAnchors)
{
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    EXPECT_NEAR(g.guardbandForZeroProb(1.0), 0.20, 1e-12);
    EXPECT_NEAR(g.guardbandForZeroProb(0.5), 0.02, 1e-12);
    // FP register file: bias 45.5% -> stress 54.5% -> 3.6%.
    EXPECT_NEAR(g.guardbandForCellBias(0.455), 0.0364, 5e-4);
    // Scheduler: worst bias 63.2% -> 6.7%.
    EXPECT_NEAR(g.guardbandForCellBias(0.632), 0.0675, 5e-4);
    // Adder at 21% utilisation: p = 0.21 + 0.79*0.5 = 0.605 -> 5.8%.
    EXPECT_NEAR(g.guardbandForZeroProb(0.605), 0.0578, 5e-4);
    // Adder at 30%: p = 0.65 -> 7.4%.
    EXPECT_NEAR(g.guardbandForZeroProb(0.65), 0.074, 5e-4);
}

TEST(Guardband, TenXReductionFromBalancing)
{
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    EXPECT_NEAR(g.reductionFactor(0.5), 10.0, 1e-9);
}

TEST(Guardband, MonotoneInStress)
{
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        const double gb = g.guardbandForZeroProb(p);
        EXPECT_GE(gb, prev);
        prev = gb;
    }
}

TEST(Guardband, CellBiasFoldsSymmetrically)
{
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    EXPECT_DOUBLE_EQ(g.guardbandForCellBias(0.2),
                     g.guardbandForCellBias(0.8));
    EXPECT_DOUBLE_EQ(g.guardbandForCellBias(0.0),
                     g.guardbandForZeroProb(1.0));
}

TEST(Guardband, WideDeviceBeatsBalancedNarrow)
{
    // Section 4.3: wide PMOS at 100% stress degrade less than
    // narrow at 50%.
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    EXPECT_LT(g.guardbandForZeroProb(1.0, WidthClass::Wide),
              g.guardbandForZeroProb(0.5, WidthClass::Narrow));
}

TEST(Guardband, UnstressedNeedsNoMargin)
{
    const GuardbandModel g = GuardbandModel::paperCalibrated();
    EXPECT_DOUBLE_EQ(g.guardbandForZeroProb(0.0), 0.0);
}

TEST(Vmin, PaperAnchors)
{
    const VminModel v = VminModel::paperCalibrated();
    EXPECT_NEAR(v.vminIncreaseForCellBias(0.5), 0.01, 1e-12);
    EXPECT_NEAR(v.vminIncreaseForCellBias(1.0), 0.10, 1e-12);
    // 10% Vmin tolerates 10% VTH shift [1].
    EXPECT_NEAR(v.vminIncreaseForVthShift(0.10), 0.10, 1e-12);
}

TEST(Vmin, PowerFactorQuadratic)
{
    const VminModel v = VminModel::paperCalibrated();
    EXPECT_NEAR(v.powerFactor(0.10), 1.21, 1e-12);
    EXPECT_DOUBLE_EQ(v.powerFactor(0.0), 1.0);
}

// ----------------------------------------------------- Efficiency

TEST(Efficiency, PaperWorkedExamples)
{
    // Section 4.2: baseline 1.73, inverting 1.41.
    EXPECT_NEAR(nbtiEfficiency(1.0, 0.20, 1.0), 1.728, 1e-3);
    EXPECT_NEAR(nbtiEfficiency(1.10, 0.02, 1.0), 1.413, 1e-3);
    // Section 4.3: adder 1.24.
    EXPECT_NEAR(nbtiEfficiency(1.0, 0.074, 1.0), 1.239, 1e-3);
    // Section 4.4: register file 1.12.
    EXPECT_NEAR(nbtiEfficiency(1.0, 0.036, 1.01), 1.124, 1e-3);
    // Section 4.5: scheduler 1.24.
    EXPECT_NEAR(nbtiEfficiency(1.0, 0.067, 1.02), 1.239, 1e-3);
    // Section 4.6: DL0 1.09.
    EXPECT_NEAR(nbtiEfficiency(1.0053, 0.02, 1.01), 1.089, 1e-3);
}

TEST(Efficiency, BlockOverload)
{
    BlockCost b;
    b.cycleTimeFactor = 1.0;
    b.guardband = 0.20;
    b.tdpFactor = 1.0;
    EXPECT_NEAR(nbtiEfficiency(b), 1.728, 1e-3);
}

TEST(Efficiency, ProcessorRollupPaperExample)
{
    // Section 4.7: CPI 1.007, guardband 7.4% max, TDP 1.01 -> 1.28.
    ProcessorCost cost(1.007);
    cost.addBlock({"adder", 1.0, 0.074, 1.00, 1.0});
    cost.addBlock({"regfile", 1.0, 0.036, 1.01, 1.0});
    cost.addBlock({"sched", 1.0, 0.067, 1.02, 1.0});
    cost.addBlock({"dl0", 1.0, 0.02, 1.01, 1.0});
    cost.addBlock({"dtlb", 1.0, 0.02, 1.00, 1.0});
    EXPECT_NEAR(cost.delay(), 1.007, 1e-9);
    EXPECT_NEAR(cost.tdp(), 1.008, 1e-3);
    EXPECT_NEAR(cost.guardband(), 0.074, 1e-12);
    EXPECT_NEAR(cost.efficiency(), 1.28, 0.01);
}

TEST(Efficiency, MaxCycleTimeDominates)
{
    ProcessorCost cost(1.0);
    cost.addBlock({"a", 1.00, 0.0, 1.0, 1.0});
    cost.addBlock({"b", 1.15, 0.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(cost.maxCycleTime(), 1.15);
    EXPECT_DOUBLE_EQ(cost.delay(), 1.15);
}

TEST(Efficiency, TdpWeights)
{
    ProcessorCost cost(1.0);
    cost.addBlock({"small", 1.0, 0.0, 2.0, 1.0});
    cost.addBlock({"large", 1.0, 0.0, 1.0, 3.0});
    EXPECT_NEAR(cost.tdp(), (2.0 + 3.0) / 4.0, 1e-12);
}

TEST(Efficiency, EmptyProcessorIsUnity)
{
    ProcessorCost cost(1.0);
    EXPECT_DOUBLE_EQ(cost.efficiency(), 1.0);
}

TEST(Efficiency, MonotoneInEachFactor)
{
    EXPECT_LT(nbtiEfficiency(1.0, 0.02, 1.0),
              nbtiEfficiency(1.0, 0.10, 1.0));
    EXPECT_LT(nbtiEfficiency(1.0, 0.02, 1.0),
              nbtiEfficiency(1.1, 0.02, 1.0));
    EXPECT_LT(nbtiEfficiency(1.0, 0.02, 1.0),
              nbtiEfficiency(1.0, 0.02, 1.1));
}

/** Property sweep: delay cubing means 1% delay costs ~3x more than
 *  1% TDP. */
TEST(Efficiency, DelayCubedProperty)
{
    const double base = nbtiEfficiency(1.0, 0.0, 1.0);
    const double delay = nbtiEfficiency(1.01, 0.0, 1.0);
    const double tdp = nbtiEfficiency(1.0, 0.0, 1.01);
    EXPECT_NEAR((delay - base) / (tdp - base), 3.0, 0.1);
}

} // namespace
} // namespace penelope
