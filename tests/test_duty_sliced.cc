/**
 * @file
 * Property tests pinning the bit-sliced duty accounting to a scalar
 * reference.
 *
 * ScalarBitBiasTracker is the pre-sliced implementation (one branchy
 * DutyCycleCounter per bit), kept verbatim as the executable
 * specification.  The sliced BitBiasTracker must match it bit for
 * bit -- same integers, same doubles -- across widths 1..128,
 * arbitrary dt (including the carry-save planes' overflow-flush
 * boundaries), interleaved reads (which force plane flushes), both
 * observe overloads, and any merge order.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/duty.hh"
#include "common/rng.hh"
#include "scheduler/scheduler.hh"
#include "scheduler/techniques.hh"

namespace penelope {
namespace {

/** The scalar reference: one DutyCycleCounter per bit. */
class ScalarBitBiasTracker
{
  public:
    explicit ScalarBitBiasTracker(unsigned width) : bits_(width) {}

    unsigned width() const
    {
        return static_cast<unsigned>(bits_.size());
    }

    void
    observe(const BitWord &value, std::uint64_t dt = 1)
    {
        for (unsigned i = 0; i < width(); ++i)
            bits_[i].observe(value.bit(i), dt);
    }

    void
    observe(Word value, std::uint64_t dt = 1)
    {
        for (unsigned i = 0; i < width(); ++i) {
            const bool level = i < 64 ? ((value >> i) & 1) : false;
            bits_[i].observe(level, dt);
        }
    }

    double
    zeroProbability(unsigned bit) const
    {
        return bits_.at(bit).zeroProbability();
    }

    const DutyCycleCounter &counter(unsigned bit) const
    {
        return bits_.at(bit);
    }

    void
    merge(const ScalarBitBiasTracker &other)
    {
        for (unsigned i = 0; i < width(); ++i)
            bits_[i].merge(other.bits_[i]);
    }

  private:
    std::vector<DutyCycleCounter> bits_;
};

/** Exact equality of every observable, integer and double. */
void
expectEqual(const BitBiasTracker &sliced,
            const ScalarBitBiasTracker &scalar)
{
    ASSERT_EQ(sliced.width(), scalar.width());
    for (unsigned b = 0; b < sliced.width(); ++b) {
        EXPECT_EQ(sliced.zeroTime(b), scalar.counter(b).zeroTime())
            << "bit " << b;
        EXPECT_EQ(sliced.counter(b).totalTime(),
                  scalar.counter(b).totalTime())
            << "bit " << b;
        // Bit-identical doubles, not just near.
        EXPECT_EQ(sliced.zeroProbability(b),
                  scalar.zeroProbability(b))
            << "bit " << b;
    }
}

BitWord
randomWord(Rng &rng, unsigned width)
{
    // Mix of densities: all-zero, sparse, dense, full random.
    const int kind = static_cast<int>(rng.nextInt(4));
    std::uint64_t lo = rng();
    std::uint64_t hi = rng();
    if (kind == 0) {
        lo = hi = 0;
    } else if (kind == 1) {
        lo &= rng();
        lo &= rng();
        hi &= rng();
        hi &= rng();
    } else if (kind == 2) {
        lo |= rng();
        hi |= rng();
    }
    return BitWord(width, lo, hi);
}

std::uint64_t
randomDt(Rng &rng)
{
    switch (rng.nextInt(8)) {
      case 0:
      case 1:
      case 2:
        return 1; // the hot case
      case 3:
        return rng.nextInt(8);         // includes dt = 0
      case 4:
        return 1 + rng.nextInt(1000);  // typical residences
      case 5:
        return 65534 + rng.nextInt(4); // plane-capacity boundary
      case 6:
        return 65536 + rng.nextInt(1 << 20); // beyond the planes
      default:
        return 1 + rng.nextInt(100);
    }
}

TEST(SlicedDuty, MatchesScalarAcrossWidthsAndDts)
{
    for (unsigned width : {1u, 2u, 7u, 31u, 32u, 33u, 63u, 64u,
                           65u, 80u, 127u, 128u}) {
        Rng rng(0xd00d + width);
        BitBiasTracker sliced(width);
        ScalarBitBiasTracker scalar(width);
        for (int step = 0; step < 2000; ++step) {
            const std::uint64_t dt = randomDt(rng);
            if (rng.nextBool(0.5)) {
                const BitWord v = randomWord(rng, width);
                sliced.observe(v, dt);
                scalar.observe(v, dt);
            } else {
                const Word v = rng();
                sliced.observe(v, dt);
                scalar.observe(v, dt);
            }
            // Interleaved reads force plane flushes mid-stream; the
            // totals must not depend on when flushes happen.
            if (rng.nextBool(0.05)) {
                const unsigned bit =
                    static_cast<unsigned>(rng.nextInt(width));
                EXPECT_EQ(sliced.zeroProbability(bit),
                          scalar.zeroProbability(bit));
            }
        }
        expectEqual(sliced, scalar);
    }
}

TEST(SlicedDuty, OverflowFlushBoundaryIsExact)
{
    // Drive the pending plane count exactly to, across, and far
    // beyond the kPlaneCap = 65535 flush boundary.
    for (std::uint64_t first : {65534ull, 65535ull, 65536ull}) {
        BitBiasTracker sliced(4);
        ScalarBitBiasTracker scalar(4);
        const BitWord v(4, 0b0101);
        const std::uint64_t dts[] = {first,    1,         1,
                                     65535,    1ull << 40, 3};
        for (const std::uint64_t dt : dts) {
            sliced.observe(v, dt);
            scalar.observe(v, dt);
        }
        expectEqual(sliced, scalar);
    }
}

TEST(SlicedDuty, DtZeroIsANoop)
{
    BitBiasTracker sliced(16);
    ScalarBitBiasTracker scalar(16);
    sliced.observe(Word(0xabcd), 0);
    scalar.observe(Word(0xabcd), 0);
    expectEqual(sliced, scalar);
    EXPECT_EQ(sliced.counter(3).totalTime(), 0u);
    EXPECT_EQ(sliced.zeroProbability(3), 0.5);
}

TEST(SlicedDuty, WordObserveTreatsHighBitsAsZero)
{
    BitBiasTracker sliced(80);
    ScalarBitBiasTracker scalar(80);
    sliced.observe(~Word(0), 7);
    scalar.observe(~Word(0), 7);
    expectEqual(sliced, scalar);
    EXPECT_EQ(sliced.zeroProbability(63), 0.0);
    EXPECT_EQ(sliced.zeroProbability(64), 1.0);
}

TEST(SlicedDuty, MergeMatchesScalarAndIsOrderIndependent)
{
    for (unsigned width : {1u, 32u, 80u, 128u}) {
        Rng rng(0xfeed + width);
        BitBiasTracker a(width);
        BitBiasTracker b(width);
        ScalarBitBiasTracker sa(width);
        ScalarBitBiasTracker sb(width);
        for (int step = 0; step < 500; ++step) {
            const BitWord v = randomWord(rng, width);
            const std::uint64_t dt = randomDt(rng);
            if (rng.nextBool(0.5)) {
                a.observe(v, dt);
                sa.observe(v, dt);
            } else {
                b.observe(v, dt);
                sb.observe(v, dt);
            }
        }
        // a+b and b+a must agree with the scalar merge exactly.
        BitBiasTracker ab = a;
        ab.merge(b);
        BitBiasTracker ba = b;
        ba.merge(a);
        ScalarBitBiasTracker sab = sa;
        sab.merge(sb);
        expectEqual(ab, sab);
        expectEqual(ba, sab);
    }
}

TEST(SlicedDuty, ResetClearsEverything)
{
    BitBiasTracker t(32);
    t.observe(Word(0x1234), 100);
    t.observe(Word(0xffff), 65535); // leave pending plane state
    t.reset();
    for (unsigned b = 0; b < 32; ++b) {
        EXPECT_EQ(t.zeroTime(b), 0u);
        EXPECT_EQ(t.counter(b).totalTime(), 0u);
        EXPECT_EQ(t.zeroProbability(b), 0.5);
    }
    // And it keeps accumulating correctly afterwards.
    ScalarBitBiasTracker scalar(32);
    t.observe(Word(0xf0f0), 9);
    scalar.observe(Word(0xf0f0), 9);
    expectEqual(t, scalar);
}

TEST(SlicedDuty, FromTimesRoundTrips)
{
    Rng rng(0xcafe);
    BitBiasTracker t(24);
    for (int i = 0; i < 100; ++i)
        t.observe(randomWord(rng, 24), randomDt(rng));
    std::vector<std::uint64_t> zeros(24);
    for (unsigned b = 0; b < 24; ++b)
        zeros[b] = t.zeroTime(b);
    const BitBiasTracker copy = BitBiasTracker::fromTimes(
        24, zeros.data(), t.totalTime());
    for (unsigned b = 0; b < 24; ++b) {
        EXPECT_EQ(copy.zeroTime(b), t.zeroTime(b));
        EXPECT_EQ(copy.zeroProbability(b), t.zeroProbability(b));
    }
}

/** Pack @p values (lane v = value for vector v) into per-bit lane
 *  words: bit v of word b = bit b of value v -- the observeBatch
 *  layout. */
std::vector<std::uint64_t>
toBitWords(const std::vector<BitWord> &values, unsigned width)
{
    std::vector<std::uint64_t> words(width, 0);
    for (unsigned b = 0; b < width; ++b) {
        for (std::size_t v = 0; v < values.size(); ++v) {
            if (values[v].bit(b))
                words[b] |= std::uint64_t(1) << v;
        }
    }
    return words;
}

TEST(SlicedDuty, ObserveBatchMatchesScalarObserves)
{
    for (unsigned width : {1u, 7u, 32u, 64u, 65u, 80u, 128u}) {
        Rng rng(0xba7c4 + width);
        BitBiasTracker batched(width);
        BitBiasTracker scalar(width);
        for (int round = 0; round < 40; ++round) {
            // Partial batches too: 1..64 selected lanes, possibly
            // non-contiguous, with garbage in the padding lanes
            // (which must be ignored entirely).
            const unsigned lanes =
                1 + static_cast<unsigned>(rng.nextInt(64));
            std::uint64_t lane_mask = lanes == 64
                ? ~std::uint64_t(0)
                : (std::uint64_t(1) << lanes) - 1;
            if (rng.nextBool(0.5))
                lane_mask &= rng() | 1; // keep at least lane 0
            const std::uint64_t dt = randomDt(rng);

            std::vector<BitWord> values;
            for (unsigned v = 0; v < 64; ++v)
                values.push_back(randomWord(rng, width));
            auto words = toBitWords(values, width);

            batched.observeBatch(words.data(), lane_mask, dt);
            for (unsigned v = 0; v < 64; ++v) {
                if ((lane_mask >> v) & 1)
                    scalar.observe(values[v], dt);
            }
        }
        ASSERT_EQ(batched.totalTime(), scalar.totalTime());
        for (unsigned b = 0; b < width; ++b) {
            ASSERT_EQ(batched.zeroTime(b), scalar.zeroTime(b))
                << "width " << width << " bit " << b;
            ASSERT_EQ(batched.zeroProbability(b),
                      scalar.zeroProbability(b));
        }
        ASSERT_EQ(batched.maxWorstCaseStress(),
                  scalar.maxWorstCaseStress());
    }
}

TEST(SlicedDuty, ObserveBatchEmptyMaskIsANoOp)
{
    BitBiasTracker t(32);
    const std::vector<std::uint64_t> words(32, ~std::uint64_t(0));
    t.observeBatch(words.data(), 0, 5);
    EXPECT_EQ(t.totalTime(), 0u);
    t.observeBatch(words.data(), ~std::uint64_t(0), 0); // dt = 0
    EXPECT_EQ(t.totalTime(), 0u);
}

TEST(SlicedDuty, ObserveBatchMergesWithScalarHistory)
{
    // Batched and scalar observations interleave and merge freely:
    // the representation is shared, so mixing paths stays exact.
    Rng rng(0x5eed);
    BitBiasTracker mixed(48);
    BitBiasTracker reference(48);
    for (int round = 0; round < 20; ++round) {
        std::vector<BitWord> values;
        for (unsigned v = 0; v < 64; ++v)
            values.push_back(randomWord(rng, 48));
        const auto words = toBitWords(values, 48);
        mixed.observeBatch(words.data(), ~std::uint64_t(0), 3);
        for (unsigned v = 0; v < 64; ++v)
            reference.observe(values[v], 3);

        const BitWord single = randomWord(rng, 48);
        mixed.observe(single, 7);
        reference.observe(single, 7);
    }
    for (unsigned b = 0; b < 48; ++b)
        ASSERT_EQ(mixed.zeroTime(b), reference.zeroTime(b));
    EXPECT_EQ(mixed.totalTime(), reference.totalTime());
}

// ------------------------------------------------- repair kernel

/** Scalar reference of the per-bit repair switch, applied through
 *  the public repairValue(); pins the mask-based recipe. */
TEST(RepairKernel, MaskRecipeMatchesPerBitSwitch)
{
    const FieldLayout &layout = fieldLayout();
    Scheduler sched{SchedulerConfig{}};

    // Hand-craft decisions exercising every technique on the Imm
    // field (16 bits, offset known from the layout).
    std::vector<BitDecision> decisions(layout.totalBits());
    const FieldSpec &imm = layout.spec(FieldId::Imm);
    const Technique kinds[8] = {
        Technique::All1,  Technique::All0, Technique::None,
        Technique::Isv,   Technique::All1K, Technique::All0K,
        Technique::Unprotectable, Technique::All1,
    };
    for (unsigned b = 0; b < imm.width; ++b) {
        BitDecision d;
        d.technique = kinds[b % 8];
        d.k = (b % 3 == 0) ? 1.0 : 0.0; // duty generator extremes
        decisions[imm.offset + b] = d;
    }
    sched.configureProtection(decisions);

    const unsigned field = static_cast<unsigned>(FieldId::Imm);
    const BitWord current(imm.width, 0xa5a5);

    // Fresh scheduler: RINV is the inversion of zero = all ones.
    for (const bool write_isv : {true, false}) {
        // Scalar reference: replicate the per-bit switch with an
        // independent generator bank in the same state.
        std::vector<DutyGenerator> gens(layout.totalBits());
        for (unsigned g = 0; g < decisions.size(); ++g)
            gens[g].setK(decisions[g].k);

        BitWord expected(imm.width);
        for (unsigned b = 0; b < imm.width; ++b) {
            const BitDecision &d = decisions[imm.offset + b];
            bool v = current.bit(b);
            switch (d.technique) {
              case Technique::All1:
                v = true;
                break;
              case Technique::All0:
                v = false;
                break;
              case Technique::All1K:
                v = gens[imm.offset + b].next();
                break;
              case Technique::All0K:
                v = !gens[imm.offset + b].next();
                break;
              case Technique::Isv:
                v = write_isv; // RINV is all ones here
                break;
              case Technique::None:
              case Technique::Unprotectable:
                break;
            }
            expected.setBit(b, v);
        }

        Scheduler fresh{SchedulerConfig{}};
        fresh.configureProtection(decisions);
        const BitWord got =
            fresh.repairValue(field, current, write_isv);
        EXPECT_EQ(got, expected) << "write_isv = " << write_isv;
    }
}

/** Repeated repairs advance the K-duty generators exactly as the
 *  per-bit loop would (ascending bit order, one next() per K bit
 *  per repair). */
TEST(RepairKernel, DutyGeneratorSequencingIsPreserved)
{
    const FieldLayout &layout = fieldLayout();
    const FieldSpec &imm = layout.spec(FieldId::Imm);
    std::vector<BitDecision> decisions(layout.totalBits());
    for (unsigned b = 0; b < imm.width; ++b) {
        BitDecision d;
        d.technique =
            (b % 2) ? Technique::All1K : Technique::All0K;
        d.k = 0.37;
        decisions[imm.offset + b] = d;
    }

    Scheduler sched{SchedulerConfig{}};
    sched.configureProtection(decisions);
    std::vector<DutyGenerator> gens(imm.width, DutyGenerator(0.37));

    const BitWord current(imm.width, 0);
    for (int round = 0; round < 50; ++round) {
        BitWord expected(imm.width);
        for (unsigned b = 0; b < imm.width; ++b) {
            const bool one = (b % 2) ? gens[b].next()
                                     : !gens[b].next();
            expected.setBit(b, one);
        }
        const BitWord got = sched.repairValue(
            static_cast<unsigned>(FieldId::Imm), current, false);
        EXPECT_EQ(got, expected) << "round " << round;
    }
}

} // namespace
} // namespace penelope
