/**
 * @file
 * Tests for the networked scale-out subsystem (src/net): frame
 * codec round-trips, rejection of truncated/corrupt/version-
 * mismatched frames without crashing, ShardPlan wire validation,
 * worker-drop-mid-slice reassignment, and a loopback coordinator +
 * two workers end-to-end run asserted byte-identical to the
 * unsharded output.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hh"
#include "core/shardplan.hh"
#include "net/coordinator.hh"
#include "net/protocol.hh"
#include "net/worker.hh"
#include "obs/metrics.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

using net::AssignMessage;
using net::Coordinator;
using net::CoordinatorConfig;
using net::Frame;
using net::HelloMessage;
using net::MessageType;
using net::RecvStatus;
using net::ResultMessage;
using net::HeartbeatAckMessage;
using net::HeartbeatMessage;
using net::kCapMetrics;
using net::MetricsQueryMessage;
using net::MetricsSnapshotMessage;
using net::setCapabilityMaskForTest;
using net::Socket;
using net::WorkerConfig;
using net::WorkerOutcome;
using net::WorkerStats;

/** A connected loopback socket pair (server side accepted). */
struct LoopbackPair
{
    Socket listener;
    Socket client;
    Socket server;

    static LoopbackPair
    make()
    {
        LoopbackPair pair;
        std::string error;
        pair.listener = Socket::listenOn(0, &error);
        EXPECT_TRUE(pair.listener.valid()) << error;
        pair.client = Socket::connectTo(
            "127.0.0.1", pair.listener.boundPort(), &error);
        EXPECT_TRUE(pair.client.valid()) << error;
        pair.server = pair.listener.accept(2'000);
        EXPECT_TRUE(pair.server.valid());
        return pair;
    }
};

/** A small but non-trivial plan fixture. */
ShardPlan
samplePlan()
{
    ShardPlan plan;
    plan.experiments = {"fig6", "fig3"};
    plan.sliceCount = 3;
    plan.traceStride = 96;
    plan.uopsPerTrace = 2'000;
    plan.cacheUops = 2'000;
    plan.adderOperandSamples = 400;
    plan.profilingTraces = 100;
    plan.mechanismTimeScale = 0.05;
    return plan;
}

// ------------------------------------------------------- framing

TEST(NetProtocol, FrameRoundTripsAcrossSizes)
{
    LoopbackPair pair = LoopbackPair::make();
    const std::string payloads[] = {
        std::string(),
        std::string("x"),
        std::string(1'000, 'a'),
        std::string(1 << 20, '\xff'),
    };
    for (const std::string &payload : payloads) {
        ASSERT_TRUE(net::sendFrame(pair.client,
                                   MessageType::Result, payload));
        Frame frame;
        ASSERT_EQ(net::recvFrame(pair.server, frame, 2'000),
                  RecvStatus::Ok);
        EXPECT_EQ(frame.type, MessageType::Result);
        EXPECT_EQ(frame.payload, payload);
    }
}

TEST(NetProtocol, BackToBackFramesKeepBoundaries)
{
    LoopbackPair pair = LoopbackPair::make();
    ASSERT_TRUE(
        net::sendFrame(pair.client, MessageType::Hello, "one"));
    ASSERT_TRUE(
        net::sendFrame(pair.client, MessageType::Assign, "two2"));
    Frame frame;
    ASSERT_EQ(net::recvFrame(pair.server, frame, 2'000),
              RecvStatus::Ok);
    EXPECT_EQ(frame.type, MessageType::Hello);
    EXPECT_EQ(frame.payload, "one");
    ASSERT_EQ(net::recvFrame(pair.server, frame, 2'000),
              RecvStatus::Ok);
    EXPECT_EQ(frame.type, MessageType::Assign);
    EXPECT_EQ(frame.payload, "two2");
}

TEST(NetProtocol, TruncatedFrameIsClosedNotACrash)
{
    // Header cut mid-way.
    {
        LoopbackPair pair = LoopbackPair::make();
        const std::string frame =
            net::encodeFrame(MessageType::Hello, "payload");
        ASSERT_TRUE(pair.client.sendAll(frame.data(), 10));
        pair.client.close();
        Frame out;
        EXPECT_EQ(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Closed);
    }
    // Payload cut mid-way.
    {
        LoopbackPair pair = LoopbackPair::make();
        const std::string frame =
            net::encodeFrame(MessageType::Hello, "payload");
        ASSERT_TRUE(
            pair.client.sendAll(frame.data(), frame.size() - 3));
        pair.client.close();
        Frame out;
        EXPECT_EQ(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Closed);
    }
}

TEST(NetProtocol, CorruptFramesAreRejected)
{
    const std::string good =
        net::encodeFrame(MessageType::Hello, "payload");

    // One flipped byte anywhere must yield Corrupt (flipping a
    // length byte can also starve the receive into Closed, but
    // never Ok).
    for (std::size_t pos : {std::size_t(0), std::size_t(5),
                            std::size_t(9), good.size() - 1}) {
        LoopbackPair pair = LoopbackPair::make();
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
        ASSERT_TRUE(pair.client.sendAll(bad.data(), bad.size()));
        pair.client.close();
        Frame out;
        EXPECT_NE(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Ok)
            << "flipped byte at " << pos;
    }
}

TEST(NetProtocol, ForeignVersionAndOversizeLengthRejected)
{
    // Hand-build a header with a foreign version.
    {
        LoopbackPair pair = LoopbackPair::make();
        ByteWriter w;
        w.u32(net::kProtocolMagic);
        w.u32(net::kProtocolVersion + 7);
        w.u32(static_cast<std::uint32_t>(MessageType::Hello));
        w.u32(0);
        w.u64(0);
        w.u64(0);
        ASSERT_TRUE(
            pair.client.sendAll(w.data().data(), w.data().size()));
        Frame out;
        EXPECT_EQ(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Corrupt);
    }
    // And one with an implausible payload length.
    {
        LoopbackPair pair = LoopbackPair::make();
        ByteWriter w;
        w.u32(net::kProtocolMagic);
        w.u32(net::kProtocolVersion);
        w.u32(static_cast<std::uint32_t>(MessageType::Result));
        w.u32(0);
        w.u64(net::kMaxFramePayload + 1);
        w.u64(0);
        ASSERT_TRUE(
            pair.client.sendAll(w.data().data(), w.data().size()));
        Frame out;
        EXPECT_EQ(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Corrupt);
    }
}

TEST(NetProtocol, RecvTimesOutInsteadOfHanging)
{
    LoopbackPair pair = LoopbackPair::make();
    Frame out;
    EXPECT_EQ(net::recvFrame(pair.server, out, 150),
              RecvStatus::Closed);
}

// ---------------------------------------------- message payloads

TEST(NetProtocol, MessageCodecsRoundTrip)
{
    {
        HelloMessage in;
        in.hostCpus = 12;
        ByteWriter w;
        in.encode(w);
        HelloMessage out;
        ByteReader r(w.view());
        ASSERT_TRUE(out.decode(r));
        EXPECT_EQ(out.hostCpus, 12u);
        EXPECT_EQ(out.protocolVersion, net::kProtocolVersion);
    }
    {
        AssignMessage in;
        in.sliceIndex = 2;
        in.plan = samplePlan();
        ByteWriter w;
        in.encode(w);
        AssignMessage out;
        ByteReader r(w.view());
        ASSERT_TRUE(out.decode(r));
        EXPECT_EQ(out.sliceIndex, 2u);
        EXPECT_EQ(out.plan, in.plan);
    }
    {
        ResultMessage in;
        in.sliceIndex = 1;
        in.hostCpus = 4;
        in.simSeconds = 1.25;
        in.entries = std::string("\x00\x01payload", 9);
        ByteWriter w;
        in.encode(w);
        ResultMessage out;
        ByteReader r(w.view());
        ASSERT_TRUE(out.decode(r));
        EXPECT_EQ(out.sliceIndex, 1u);
        EXPECT_EQ(out.hostCpus, 4u);
        EXPECT_EQ(out.simSeconds, 1.25);
        EXPECT_EQ(out.entries, in.entries);
    }
}

TEST(NetProtocol, MessageDecodersRejectBadPayloads)
{
    // Hello with a foreign protocol version.
    {
        HelloMessage in;
        in.protocolVersion = 99;
        ByteWriter w;
        in.encode(w);
        HelloMessage out;
        ByteReader r(w.view());
        EXPECT_FALSE(out.decode(r));
    }
    // Assign whose slice index is outside the plan.
    {
        AssignMessage in;
        in.sliceIndex = 10; // plan has 3 slices
        in.plan = samplePlan();
        ByteWriter w;
        in.encode(w);
        AssignMessage out;
        ByteReader r(w.view());
        EXPECT_FALSE(out.decode(r));
    }
    // Truncated Result.
    {
        ResultMessage in;
        in.entries = "0123456789";
        ByteWriter w;
        in.encode(w);
        const std::string_view whole = w.view();
        ResultMessage out;
        ByteReader r(whole.substr(0, whole.size() - 4));
        EXPECT_FALSE(out.decode(r));
    }
}

// ------------------------------------------------------ ShardPlan

TEST(ShardPlanCodec, RoundTripsAndValidates)
{
    const ShardPlan plan = samplePlan();
    ByteWriter w;
    plan.encode(w);

    ShardPlan out;
    ByteReader r(w.view());
    ASSERT_TRUE(out.decode(r));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(out, plan);

    // Any truncation fails cleanly.
    const std::string_view whole = w.view();
    for (std::size_t cut = 0; cut < whole.size();
         cut += std::max<std::size_t>(1, whole.size() / 17)) {
        ShardPlan bad;
        ByteReader rr(whole.substr(0, cut));
        EXPECT_FALSE(bad.decode(rr)) << "cut at " << cut;
    }
}

TEST(ShardPlanCodec, RejectsOutOfRangeFields)
{
    // A zero stride (division hazard downstream) must not decode.
    ShardPlan plan = samplePlan();
    plan.traceStride = 0;
    ByteWriter w;
    plan.encode(w);
    ShardPlan out;
    ByteReader r(w.view());
    EXPECT_FALSE(out.decode(r));

    // Neither must an absurd experiment count (corrupt length).
    ByteWriter w2;
    w2.u8(0x50); // tag
    w2.u8(1);    // version
    w2.u32(1u << 30);
    ShardPlan out2;
    ByteReader r2(w2.view());
    EXPECT_FALSE(out2.decode(r2));
}

TEST(ShardPlanCodec, SliceOptionsMirrorPlanFields)
{
    const ShardPlan plan = samplePlan();
    const ExperimentOptions options = plan.sliceOptions(2);
    EXPECT_EQ(options.traceStride, plan.traceStride);
    EXPECT_EQ(options.uopsPerTrace, plan.uopsPerTrace);
    EXPECT_EQ(options.cacheUops, plan.cacheUops);
    EXPECT_EQ(options.adderOperandSamples,
              plan.adderOperandSamples);
    EXPECT_EQ(options.profilingTraces, plan.profilingTraces);
    EXPECT_EQ(options.mechanismTimeScale,
              plan.mechanismTimeScale);
    EXPECT_EQ(options.shardIndex, 2u);
    EXPECT_EQ(options.shardCount, plan.sliceCount);
    EXPECT_EQ(options.cache, nullptr);
    EXPECT_EQ(options.pool, nullptr);
}

TEST(ShardPlanCodec, RunPlanSliceRejectsUnknownWork)
{
    const WorkloadSet workload;
    ResultCache cache;
    ShardPlan plan = samplePlan();
    plan.experiments = {"no-such-experiment"};
    EXPECT_FALSE(
        runPlanSlice(workload, plan, 0, 1, nullptr, cache));
    EXPECT_EQ(cache.size(), 0u);

    // And an out-of-range slice.
    EXPECT_FALSE(runPlanSlice(workload, samplePlan(),
                              samplePlan().sliceCount, 1, nullptr,
                              cache));
}

// ------------------------------------------------- end-to-end run

/** Render the plan's experiments unsharded with @p cache. */
std::string
renderPlan(const WorkloadSet &workload, const ShardPlan &plan,
           ResultCache *cache)
{
    registerBuiltinExperiments();
    std::ostringstream out;
    for (const std::string &name : plan.experiments) {
        const Experiment *experiment =
            ExperimentRegistry::instance().find(name);
        EXPECT_NE(experiment, nullptr) << name;
        ExperimentOptions options = plan.sliceOptions(0);
        options.shardIndex = 0;
        options.shardCount = 1;
        options.cache = cache;
        experiment->run({workload, options, out});
    }
    return out.str();
}

TEST(Distributed, LoopbackCoordinatorWithTwoWorkersIsBitIdentical)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    config.workersExpected = 2;
    config.sliceTimeoutMs = 60'000;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;

    std::thread serve([&] { coordinator.run(); });
    auto workerBody = [&](WorkerStats *stats,
                          WorkerOutcome *outcome) {
        WorkerConfig wc;
        wc.host = "127.0.0.1";
        wc.port = coordinator.port();
        wc.hostCpus = 1;
        ResultCache local;
        std::string werr;
        *outcome =
            net::runWorker(wc, workload, local, stats, &werr);
    };
    WorkerStats stats[2];
    WorkerOutcome outcomes[2];
    std::thread w0(workerBody, &stats[0], &outcomes[0]);
    std::thread w1(workerBody, &stats[1], &outcomes[1]);
    w0.join();
    w1.join();
    serve.join();

    EXPECT_EQ(outcomes[0], WorkerOutcome::Finished);
    EXPECT_EQ(outcomes[1], WorkerOutcome::Finished);
    EXPECT_EQ(stats[0].slicesRun + stats[1].slicesRun,
              plan.sliceCount);

    const net::CoordinatorStats &cs = coordinator.stats();
    EXPECT_EQ(cs.slices, plan.sliceCount);
    EXPECT_EQ(cs.workersSeen, 2u);
    EXPECT_EQ(cs.reassignments, 0u);

    // The final render must draw every per-trace result from the
    // collected entries (0 stores) and be byte-identical to the
    // unsharded reference.
    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(collected.stats().stores, 0u);
    EXPECT_GT(collected.stats().hits, 0u);
}

TEST(Distributed, WorkerDroppedMidSliceIsReassigned)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    config.workersExpected = 2;
    config.sliceTimeoutMs = 60'000;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    // The saboteur takes its first assignment and drops the
    // connection without replying: a deterministic
    // kill-mid-slice.
    WorkerConfig bad;
    bad.host = "127.0.0.1";
    bad.port = coordinator.port();
    bad.abortAfterAssignments = 1;
    ResultCache bad_cache;
    WorkerOutcome bad_outcome;
    std::thread saboteur([&] {
        std::string werr;
        bad_outcome = net::runWorker(bad, workload, bad_cache,
                                     nullptr, &werr);
    });
    saboteur.join();
    EXPECT_EQ(bad_outcome, WorkerOutcome::Aborted);

    // A healthy worker then completes the whole run, including
    // the forfeited slice.
    WorkerConfig good;
    good.host = "127.0.0.1";
    good.port = coordinator.port();
    ResultCache good_cache;
    WorkerStats good_stats;
    WorkerOutcome good_outcome;
    std::thread rescuer([&] {
        std::string werr;
        good_outcome = net::runWorker(good, workload, good_cache,
                                      &good_stats, &werr);
    });
    rescuer.join();
    serve.join();

    EXPECT_EQ(good_outcome, WorkerOutcome::Finished);
    EXPECT_EQ(good_stats.slicesRun, plan.sliceCount);
    EXPECT_GE(coordinator.stats().reassignments, 1u);

    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(collected.stats().stores, 0u);
}

// --------------------------------------- entry streams over wire

TEST(Distributed, ExportImportBytesRoundTripsEntries)
{
    ResultCache a;
    const Hash128 k1{0x1111, 0x2222};
    const Hash128 k2{0x3333, 0x4444};
    a.store(k1, "first payload");
    a.store(k2, "second payload");
    std::string bytes;
    a.exportToBytes(bytes);

    ResultCache b;
    ASSERT_TRUE(b.importFromBytes(bytes));
    std::string payload;
    ASSERT_TRUE(b.lookup(k1, payload));
    EXPECT_EQ(payload, "first payload");
    ASSERT_TRUE(b.lookup(k2, payload));
    EXPECT_EQ(payload, "second payload");

    // Importing the same stream twice deduplicates (the duplicate
    // Result case), and a flipped byte degrades to a dropped
    // record, never a wrong payload.
    ASSERT_TRUE(b.importFromBytes(bytes));
    EXPECT_EQ(b.size(), 2u);

    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x10;
    ResultCache c;
    ASSERT_TRUE(c.importFromBytes(corrupt));
    EXPECT_LE(c.size(), 2u);
    std::string p1;
    std::string p2;
    const bool has1 = c.lookup(k1, p1);
    const bool has2 = c.lookup(k2, p2);
    if (has1) {
        EXPECT_EQ(p1, "first payload");
    }
    if (has2) {
        EXPECT_EQ(p2, "second payload");
    }
    EXPECT_LT(static_cast<int>(has1) + static_cast<int>(has2), 2);

    // A foreign header is rejected outright.
    ResultCache d;
    EXPECT_FALSE(d.importFromBytes("not a shard stream"));
}

// ------------------------------------------------- protocol fuzz

/** Deterministic xorshift64 stream for the fuzz suites. */
struct FuzzRng
{
    std::uint64_t state;

    explicit FuzzRng(std::uint64_t seed) : state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    std::uint32_t
    below(std::uint32_t n)
    {
        return n ? static_cast<std::uint32_t>(next() % n) : 0;
    }
};

TEST(NetFuzz, RandomByteBlobsAreRejectedOrClosed)
{
    FuzzRng rng(0x5eed0001);
    for (int i = 0; i < 32; ++i) {
        LoopbackPair pair = LoopbackPair::make();
        std::string blob(rng.below(120), '\0');
        for (char &c : blob)
            c = static_cast<char>(rng.next());
        if (!blob.empty()) {
            ASSERT_TRUE(
                pair.client.sendAll(blob.data(), blob.size()));
        }
        pair.client.close();
        Frame out;
        EXPECT_NE(net::recvFrame(pair.server, out, 2'000),
                  RecvStatus::Ok)
            << "seeded blob " << i;
    }
}

TEST(NetFuzz, MutatedFramesNeverDeliverAlteredPayloads)
{
    // A corpus of one valid frame per conversation direction.
    std::vector<std::pair<MessageType, std::string>> corpus;
    {
        net::HelloMessage hello;
        hello.hostCpus = 8;
        ByteWriter w;
        hello.encode(w);
        corpus.emplace_back(MessageType::Hello,
                            std::string(w.view()));
    }
    {
        net::HeartbeatMessage beat;
        beat.sliceIndex = 1;
        beat.sequence = 42;
        ByteWriter w;
        beat.encode(w);
        corpus.emplace_back(MessageType::Heartbeat,
                            std::string(w.view()));
    }
    {
        ResultMessage result;
        result.sliceIndex = 2;
        result.entries = std::string(256, '\x5a');
        ByteWriter w;
        result.encode(w);
        corpus.emplace_back(MessageType::Result,
                            std::string(w.view()));
    }
    {
        net::SubmitJobMessage submit;
        submit.plan = samplePlan();
        ByteWriter w;
        submit.encode(w);
        corpus.emplace_back(MessageType::SubmitJob,
                            std::string(w.view()));
    }

    FuzzRng rng(0x5eed0002);
    for (int i = 0; i < 96; ++i) {
        const auto &[type, payload] = corpus[rng.below(
            static_cast<std::uint32_t>(corpus.size()))];
        std::string frame = net::encodeFrame(type, payload);
        const bool truncate = rng.below(3) == 0;
        if (truncate) {
            frame.resize(rng.below(
                static_cast<std::uint32_t>(frame.size())));
        } else {
            const unsigned flips = 1 + rng.below(3);
            for (unsigned f = 0; f < flips; ++f) {
                const std::uint32_t pos = rng.below(
                    static_cast<std::uint32_t>(frame.size()));
                frame[pos] = static_cast<char>(
                    frame[pos] ^ (1u << rng.below(8)));
            }
        }

        LoopbackPair pair = LoopbackPair::make();
        if (!frame.empty()) {
            ASSERT_TRUE(
                pair.client.sendAll(frame.data(), frame.size()));
        }
        pair.client.close();
        Frame out;
        const RecvStatus status =
            net::recvFrame(pair.server, out, 2'000);
        if (truncate) {
            // A strict prefix can never verify.
            EXPECT_NE(status, RecvStatus::Ok) << "iteration " << i;
        } else if (status == RecvStatus::Ok) {
            // Bit flips may land in the checksum-exempt flags word;
            // an accepted frame must still carry the exact payload.
            EXPECT_EQ(out.type, type) << "iteration " << i;
            EXPECT_EQ(out.payload, payload) << "iteration " << i;
        }
    }
}

TEST(NetFuzz, CoordinatorSurvivesFrameStormThenServesCleanly)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    Coordinator coordinator(collected, config); // resident
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    // The storm: seeded hostile connections throwing garbage
    // blobs, corrupted frames and out-of-protocol first frames at
    // the listener.  None may crash or wedge the service.
    FuzzRng rng(0x5eed0003);
    for (int i = 0; i < 24; ++i) {
        Socket conn = Socket::connectTo("127.0.0.1",
                                        coordinator.port(), &error);
        ASSERT_TRUE(conn.valid()) << error;
        switch (i % 4) {
          case 0: { // raw noise
            std::string blob(1 + rng.below(200), '\0');
            for (char &c : blob)
                c = static_cast<char>(rng.next());
            conn.sendAll(blob.data(), blob.size());
            break;
          }
          case 1: { // valid frame, flipped payload byte
            net::JobStatusMessage status;
            status.jobId = rng.below(100);
            ByteWriter w;
            status.encode(w);
            std::string frame = net::encodeFrame(
                MessageType::JobStatus, w.view());
            frame[net::kFrameHeaderBytes +
                  rng.below(static_cast<std::uint32_t>(
                      frame.size() - net::kFrameHeaderBytes))] ^=
                0x10;
            conn.sendAll(frame.data(), frame.size());
            break;
          }
          case 2: { // out-of-protocol first frame
            net::HeartbeatMessage beat;
            beat.sliceIndex = rng.below(8);
            beat.sequence = rng.next();
            ByteWriter w;
            beat.encode(w);
            net::sendFrame(conn, MessageType::Heartbeat, w.view());
            break;
          }
          case 3: { // client op for a job that never existed
            net::CancelJobMessage cancel;
            cancel.jobId = 1000 + rng.below(1000);
            ByteWriter w;
            cancel.encode(w);
            net::sendFrame(conn, MessageType::CancelJob, w.view());
            break;
          }
        }
        conn.close();
    }

    // After the storm, a clean worker + client conversation must
    // complete bit-identically.
    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = coordinator.port();
    ResultCache worker_cache;
    WorkerOutcome outcome = WorkerOutcome::Aborted;
    std::thread worker([&] {
        std::string werr;
        outcome = net::runWorker(wc, workload, worker_cache,
                                 nullptr, &werr);
    });

    Socket client = Socket::connectTo("127.0.0.1",
                                      coordinator.port(), &error);
    ASSERT_TRUE(client.valid()) << error;
    {
        net::SubmitJobMessage submit;
        submit.plan = plan;
        ByteWriter w;
        submit.encode(w);
        ASSERT_TRUE(net::sendFrame(client, MessageType::SubmitJob,
                                   w.view()));
    }
    ResultCache client_cache;
    net::JobUpdateMessage update;
    do {
        Frame frame;
        ASSERT_EQ(net::recvFrame(client, frame, 60'000),
                  RecvStatus::Ok);
        ASSERT_EQ(frame.type, MessageType::JobUpdate);
        ByteReader r(frame.payload);
        ASSERT_TRUE(update.decode(r));
        ASSERT_NE(update.state, net::JobState::Rejected);
        if (!update.entries.empty()) {
            ASSERT_TRUE(
                client_cache.importFromBytes(update.entries));
        }
    } while (!net::jobStateFinal(update.state));
    EXPECT_EQ(update.state, net::JobState::Complete);
    client.close();

    coordinator.requestStop();
    worker.join();
    serve.join();
    EXPECT_EQ(outcome, WorkerOutcome::Finished);

    const std::string rendered =
        renderPlan(workload, plan, &client_cache);
    EXPECT_EQ(rendered, reference);
    EXPECT_EQ(client_cache.stats().stores, 0u);
}


// ------------------------------------------- metrics extensions

/** The v1 heartbeat payload is exactly u32 slice + u64 sequence.
 *  The kCapMetrics piggyback must not disturb that layout: an
 *  empty metrics field encodes to the exact 12 legacy bytes (a v1
 *  coordinator's strict atEnd decode accepts it), and a legacy
 *  12-byte payload decodes with empty metrics. */
TEST(NetProtocol, HeartbeatKeepsLegacyLayoutWithoutMetrics)
{
    HeartbeatMessage in;
    in.sliceIndex = 3;
    in.sequence = 41;
    ByteWriter w;
    in.encode(w);
    ASSERT_EQ(w.view().size(), 12u);

    HeartbeatMessage out;
    ByteReader r(w.view());
    ASSERT_TRUE(out.decode(r));
    EXPECT_EQ(out.sliceIndex, 3u);
    EXPECT_EQ(out.sequence, 41u);
    EXPECT_TRUE(out.metrics.empty());
}

TEST(NetProtocol, HeartbeatMetricsTailRoundTrips)
{
    HeartbeatMessage in;
    in.sliceIndex = 1;
    in.sequence = 7;
    in.metrics = std::string("\x01\x00\x00\x00\x00", 5);
    ByteWriter w;
    in.encode(w);
    EXPECT_GT(w.view().size(), 12u);

    HeartbeatMessage out;
    ByteReader r(w.view());
    ASSERT_TRUE(out.decode(r));
    EXPECT_EQ(out.sequence, 7u);
    EXPECT_EQ(out.metrics, in.metrics);

    // A truncated tail is a decode failure, not an empty field.
    HeartbeatMessage bad;
    ByteReader rt(w.view().substr(0, w.view().size() - 2));
    EXPECT_FALSE(bad.decode(rt));
}

TEST(NetProtocol, MetricsMessageCodecsRoundTrip)
{
    {
        HeartbeatAckMessage in;
        in.sliceIndex = 2;
        in.sequence = 99;
        ByteWriter w;
        in.encode(w);
        HeartbeatAckMessage out;
        ByteReader r(w.view());
        ASSERT_TRUE(out.decode(r));
        EXPECT_EQ(out.sliceIndex, 2u);
        EXPECT_EQ(out.sequence, 99u);
    }
    {
        MetricsQueryMessage in;
        ByteWriter w;
        in.encode(w);
        MetricsQueryMessage out;
        ByteReader r(w.view());
        EXPECT_TRUE(out.decode(r));
    }
    {
        MetricsSnapshotMessage in;
        in.text = "# TYPE penelope_x counter\npenelope_x 1\n";
        ByteWriter w;
        in.encode(w);
        MetricsSnapshotMessage out;
        ByteReader r(w.view());
        ASSERT_TRUE(out.decode(r));
        EXPECT_EQ(out.text, in.text);

        MetricsSnapshotMessage bad;
        ByteReader rt(w.view().substr(0, w.view().size() - 1));
        EXPECT_FALSE(bad.decode(rt));
    }
}

/** Emulate a peer without kCapMetrics: with the bit masked off the
 *  whole conversation degrades to the PR-7 feature level -- no
 *  piggybacked snapshots, no acks -- and the run still converges
 *  bit-identically. */
TEST(Distributed, NoMetricsCapabilityDegradesCleanly)
{
    setCapabilityMaskForTest(kCapMetrics);
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    config.sliceTimeoutMs = 60'000;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = coordinator.port();
    wc.hostCpus = 1;
    wc.heartbeatIntervalMs = 5;
    ResultCache local;
    WorkerStats stats;
    std::string werr;
    const WorkerOutcome outcome =
        net::runWorker(wc, workload, local, &stats, &werr);
    serve.join();
    setCapabilityMaskForTest(0);

    EXPECT_EQ(outcome, WorkerOutcome::Finished);
    EXPECT_TRUE(coordinator.workerSnapshots().empty());
    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
}

/** With full capabilities, worker heartbeats carry snapshots the
 *  coordinator aggregates per worker.  Gated on a heartbeat having
 *  actually fired (slices can finish under the interval). */
TEST(Distributed, MetricsPiggybackReachesCoordinator)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP();
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();

    ResultCache collected;
    CoordinatorConfig config;
    config.sliceTimeoutMs = 60'000;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = coordinator.port();
    wc.hostCpus = 1;
    wc.heartbeatIntervalMs = 2;
    wc.slowFactor = 2.0; // stretch slices past the beat interval
    ResultCache local;
    WorkerStats stats;
    std::string werr;
    const WorkerOutcome outcome =
        net::runWorker(wc, workload, local, &stats, &werr);
    serve.join();

    EXPECT_EQ(outcome, WorkerOutcome::Finished);
    if (stats.heartbeatsSent > 0) {
        const obs::LabeledSnapshots snaps =
            coordinator.workerSnapshots();
        ASSERT_FALSE(snaps.empty());
        EXPECT_EQ(snaps.front().first, "worker=\"0\"");
        EXPECT_FALSE(snaps.front().second.metrics.empty());
        EXPECT_NE(snaps.front().second.find("net.frames_sent"),
                  nullptr);
    }
}

} // namespace
} // namespace penelope
