/**
 * @file
 * Tests for the surrogate triage layer: deterministic least-squares
 * fitting, feature sanity, triage selection accounting, the
 * full-audit == --no-surrogate byte-identity contract of the
 * attack-search experiment, top-K argmax coverage on candidate
 * corpora, seed reproducibility and RNG-stream isolation.  The
 * iron rule under test throughout: the surrogate only decides what
 * the exact engine evaluates -- every printed figure is exact.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "adder/adder.hh"
#include "adder/analysis.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "core/registry.hh"
#include "core/resultcache.hh"
#include "core/surrogate_sweep.hh"
#include "nbti/guardband.hh"
#include "nbti/surrogate.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

/** Synthetic linear corpus: score = 0.3 + sum_i w_i * f_i with no
 *  noise, so an exact fit exists and both RMSEs must be ~0. */
std::vector<SurrogateSample>
linearCorpus(std::size_t count, std::size_t features,
             std::uint64_t seed)
{
    std::vector<double> weights(features);
    Rng wrng(mixSeed(seed, 0x3e1));
    for (auto &w : weights)
        w = wrng.nextDouble() - 0.5;
    std::vector<SurrogateSample> samples(count);
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(mixSeed(seed, i));
        samples[i].features.resize(features);
        double score = 0.3;
        for (std::size_t f = 0; f < features; ++f) {
            samples[i].features[f] = rng.nextDouble();
            score += weights[f] * samples[i].features[f];
        }
        samples[i].score = score;
    }
    return samples;
}

TEST(SurrogateFit, DeterministicAcrossRuns)
{
    const auto samples = linearCorpus(80, 12, 0xf00d);
    SurrogateFitConfig config;
    const SurrogateFit a = fitSurrogate(samples, config);
    const SurrogateFit b = fitSurrogate(samples, config);
    ASSERT_EQ(a.coeffs.size(), b.coeffs.size());
    for (std::size_t c = 0; c < a.coeffs.size(); ++c)
        EXPECT_EQ(a.coeffs[c], b.coeffs[c]) << "coeff " << c;
    EXPECT_EQ(a.trainRmse, b.trainRmse);
    EXPECT_EQ(a.holdoutRmse, b.holdoutRmse);
    EXPECT_EQ(a.trainCount, b.trainCount);
    EXPECT_EQ(a.holdoutCount, b.holdoutCount);
}

TEST(SurrogateFit, RecoversNoiselessLinearModel)
{
    const auto samples = linearCorpus(200, 8, 0xbeef);
    SurrogateFitConfig config;
    const SurrogateFit fit = fitSurrogate(samples, config);
    EXPECT_EQ(fit.featureCount(), 8u);
    EXPECT_GT(fit.trainCount, 0u);
    EXPECT_GT(fit.holdoutCount, 0u);
    EXPECT_LT(fit.trainRmse, 1e-6);
    EXPECT_LT(fit.holdoutRmse, 1e-6);
    // Predictions on fresh points from the same model also match.
    const auto fresh = linearCorpus(20, 8, 0xbeef);
    for (const auto &s : fresh)
        EXPECT_NEAR(fit.predict(s.features), s.score, 1e-6);
}

TEST(SurrogateFit, SplitChangesWithSeed)
{
    const auto samples = linearCorpus(80, 6, 0x51ee9);
    SurrogateFitConfig a, b;
    b.seed = a.seed + 1;
    const SurrogateFit fa = fitSurrogate(samples, a);
    const SurrogateFit fb = fitSurrogate(samples, b);
    // Different per-sample split streams: the partition (or at
    // least its observable sizes/errors) differs.
    EXPECT_TRUE(fa.trainCount != fb.trainCount ||
                fa.trainRmse != fb.trainRmse);
}

// ----------------------------------------------------------- features

TEST(SurrogateFeatures, ZeroDutiesAreMonotoneInOperandZeros)
{
    // All-zero operand values keep every input bit at logic 0, so
    // every zero-duty feature saturates at 1; all-ones operands
    // drive the a-side duties to 0.  The feature extractor must
    // preserve that ordering bit for bit.
    AttackConfig zeros;
    zeros.dataValue = 0;
    zeros.imm = 0;
    zeros.branchPeriod = 0;
    AttackConfig ones = zeros;
    ones.dataValue = 0xffff'ffffULL;
    ones.imm = 0xffff;

    const auto f0 = candidateFeatures(zeros, 32);
    const auto f1 = candidateFeatures(ones, 32);
    ASSERT_EQ(f0.size(), operandFeatureCount(32));
    ASSERT_EQ(f1.size(), f0.size());
    for (std::size_t i = 0; i < f0.size(); ++i) {
        EXPECT_GE(f0[i], 0.0);
        EXPECT_LE(f0[i], 1.0);
        EXPECT_GE(f0[i], f1[i]) << "feature " << i;
    }
    // a-bit duties: pinned-zero operands are always zero.
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(f0[i], 1.0) << "a-bit " << i;
}

TEST(SurrogateFeatures, PredictionTracksStressOrdering)
{
    // Trained on real candidates, the surrogate must at least rank
    // the all-zero stream (maximal zero duty -> maximal NBTI
    // stress) above the alternating-bits stream.
    const Engine engine(1);
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis analysis(adder,
                                GuardbandModel::paperCalibrated());
    TriageStats stats;
    SurrogateFitConfig config;
    const SurrogateFit fit = trainAttackSurrogate(
        analysis, 48, config, 256, engine, nullptr, stats);
    EXPECT_EQ(stats.trainEvaluated, 48u);

    AttackConfig zeros;
    zeros.dataValue = 0;
    zeros.imm = 0;
    zeros.branchPeriod = 0;
    AttackConfig mixed = zeros;
    mixed.dataValue = 0x5555'5555ULL;
    mixed.imm = 0x5555;
    EXPECT_GT(fit.predict(candidateFeatures(zeros, 32)),
              fit.predict(candidateFeatures(mixed, 32)));
}

// ------------------------------------------------------------- triage

TEST(Triage, FullAuditSelectsEverythingInOrder)
{
    TriageConfig config;
    config.topK = 2;
    config.auditFraction = 1.0;
    TriageStats stats;
    const std::vector<double> predicted = {0.3, 0.1, 0.9, 0.5};
    const auto selected = triageSelect(predicted, config, stats);
    const std::vector<std::size_t> all = {0, 1, 2, 3};
    EXPECT_EQ(selected, all);
    EXPECT_EQ(stats.candidatesScored, 4u);
    EXPECT_EQ(stats.exactEvaluated, 4u);
    EXPECT_EQ(stats.pruned, 0u);
}

TEST(Triage, TopKPlusAuditAccounting)
{
    TriageConfig config;
    config.topK = 2;
    config.auditFraction = 0.0;
    TriageStats stats;
    const std::vector<double> predicted = {0.3, 0.1, 0.9, 0.5, 0.2};
    const auto selected = triageSelect(predicted, config, stats);
    const std::vector<std::size_t> expect = {2, 3};
    EXPECT_EQ(selected, expect); // ascending indices
    EXPECT_EQ(stats.candidatesScored, 5u);
    EXPECT_EQ(stats.exactEvaluated, 2u);
    EXPECT_EQ(stats.pruned, 3u);
    EXPECT_EQ(stats.audited, 0u);
}

// ----------------------------------------------- sweeps and coverage

ExperimentOptions
searchOptions()
{
    ExperimentOptions options;
    options.traceStride = 97;
    options.uopsPerTrace = 2'000;
    options.adderOperandSamples = 200;
    options.surrogateTrainCandidates = 24;
    options.attackSearchRestarts = 2;
    options.attackSearchGenerations = 3;
    options.attackSearchProposals = 8;
    options.attackSearchExactSamples = 256;
    return options;
}

std::string
runAttackSearchToString(const ExperimentOptions &options)
{
    registerBuiltinExperiments();
    const Experiment *exp =
        ExperimentRegistry::instance().find("attack-search");
    EXPECT_NE(exp, nullptr);
    const WorkloadSet workload;
    std::ostringstream out;
    exp->run({workload, options, out});
    return out.str();
}

TEST(AttackSearch, FullAuditByteIdenticalToNoSurrogate)
{
    ExperimentOptions disabled = searchOptions();
    disabled.surrogateEnabled = false;
    ExperimentOptions full_audit = searchOptions();
    full_audit.surrogateAuditFraction = 1.0;
    const std::string a = runAttackSearchToString(disabled);
    const std::string b = runAttackSearchToString(full_audit);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("Attack search"), std::string::npos);
}

TEST(AttackSearch, SeedReproducible)
{
    const ExperimentOptions options = searchOptions();
    const std::string a = runAttackSearchToString(options);
    const std::string b = runAttackSearchToString(options);
    EXPECT_EQ(a, b);

    ExperimentOptions reseeded = searchOptions();
    reseeded.surrogateSeed ^= 0x1234'5678ULL;
    // A different surrogate seed redraws the restart starting
    // points, so the search visits different streams.
    EXPECT_NE(runAttackSearchToString(reseeded), a);
}

TEST(AttackSearch, TriagedJobsInvariant)
{
    ExperimentOptions serial = searchOptions();
    ExperimentOptions parallel = searchOptions();
    parallel.jobs = 4;
    EXPECT_EQ(runAttackSearchToString(serial),
              runAttackSearchToString(parallel));
}

TEST(SweepCoverage, TopKContainsExactArgmax)
{
    // The acceptance corpora: seeded random candidate pools; the
    // pruned sweep must always exact-evaluate the candidate the
    // exhaustive sweep crowns, and report the same best score.
    const Engine engine(1);
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis analysis(adder,
                                GuardbandModel::paperCalibrated());
    // Default-strength training and default top-K: the coverage
    // this test pins is the one the shipping configuration gives.
    TriageStats train_stats;
    SurrogateFitConfig fit_config;
    const SurrogateFit fit = trainAttackSurrogate(
        analysis, 96, fit_config, 512, engine, nullptr,
        train_stats);

    CandidateSweepConfig exhaustive;
    exhaustive.triage = false;
    exhaustive.exactSamples = 512;
    CandidateSweepConfig pruned = exhaustive;
    pruned.triage = true;
    pruned.triageConfig.topK = ExperimentOptions().surrogateTopK;
    pruned.triageConfig.auditFraction = 0.05;

    for (std::uint64_t corpus = 0; corpus < 3; ++corpus) {
        std::vector<AttackConfig> pool;
        for (std::size_t i = 0; i < 64; ++i) {
            Rng rng(mixSeed(0xc0de'0000 + corpus, i));
            pool.push_back(randomAttackCandidate(rng));
        }
        const CandidateSweepResult full = sweepAttackCandidates(
            analysis, pool, nullptr, exhaustive, engine, nullptr);
        const CandidateSweepResult cut = sweepAttackCandidates(
            analysis, pool, &fit, pruned, engine, nullptr);
        EXPECT_LT(cut.evaluated.size(), pool.size())
            << "corpus " << corpus;
        EXPECT_NE(std::find(cut.evaluated.begin(),
                            cut.evaluated.end(), full.bestIndex),
                  cut.evaluated.end())
            << "corpus " << corpus;
        EXPECT_EQ(cut.best.score, full.best.score)
            << "corpus " << corpus;
        EXPECT_EQ(cut.bestIndex, full.bestIndex)
            << "corpus " << corpus;
    }
}

TEST(SweepCoverage, CacheDoesNotChangeResults)
{
    const Engine engine(1);
    LadnerFischerAdder adder(32);
    AdderAgingAnalysis analysis(adder,
                                GuardbandModel::paperCalibrated());
    std::vector<AttackConfig> pool;
    for (std::size_t i = 0; i < 16; ++i) {
        Rng rng(mixSeed(0xcafe, i));
        pool.push_back(randomAttackCandidate(rng));
    }
    CandidateSweepConfig config;
    config.triage = false;
    config.exactSamples = 256;

    ResultCache cache; // in-memory store
    const auto uncached = sweepAttackCandidates(
        analysis, pool, nullptr, config, engine, nullptr);
    const auto cold = sweepAttackCandidates(
        analysis, pool, nullptr, config, engine, &cache);
    const auto warm = sweepAttackCandidates(
        analysis, pool, nullptr, config, engine, &cache);
    EXPECT_EQ(cache.stats().hits, pool.size());
    ASSERT_EQ(cold.evals.size(), uncached.evals.size());
    for (std::size_t i = 0; i < cold.evals.size(); ++i) {
        EXPECT_EQ(cold.evals[i].score, uncached.evals[i].score);
        EXPECT_EQ(warm.evals[i].score, uncached.evals[i].score);
        EXPECT_EQ(warm.evals[i].guardband,
                  uncached.evals[i].guardband);
    }
}

// ------------------------------------------------- stream isolation

TEST(RngStreams, SurrogateStreamTagsArePinned)
{
    // The surrogate's derived streams, pinned: renaming a tag (or
    // touching mixSeed) silently re-draws every training pool,
    // audit pick and search trajectory, so any drift must fail
    // loudly here.  These are the streams behind the default
    // surrogateSeed.
    const std::uint64_t seed = 0x5a11'7e57'0b5eULL;
    EXPECT_EQ(mixSeed(seed, 0xf17), 0xa3e6ba6306e20e73ULL);
    EXPECT_EQ(mixSeed(seed, 0xa0d17), 0x86fa7717ba9b295eULL);
    EXPECT_EQ(mixSeed(seed, 0x5ea4c0), 0x8afb86775b8361aeULL);
    Rng fit(mixSeed(seed, 0xf17));
    Rng audit(mixSeed(seed, 0xa0d17));
    Rng search(mixSeed(seed, 0x5ea4c0));
    EXPECT_EQ(fit(), 0x2d52aa4903b1a6a8ULL);
    EXPECT_EQ(audit(), 0xcdc645985e0a47a0ULL);
    EXPECT_EQ(search(), 0x31aa577cad8aace0ULL);
}

TEST(RngStreams, TrainingPoolDisjointFromSearchStreams)
{
    // The training pool draws from mixSeed(fitSeed, 2^62 + i); the
    // search draws from mixSeed(surrogateSeed, 0x5ea4c0 + r).  The
    // first candidates of each must differ -- shared draws would
    // couple triage quality to the search trajectory.
    const std::uint64_t seed = 0x5a11'7e57'0b5eULL;
    const std::uint64_t fit_seed = mixSeed(seed, 0xf17);
    Rng train(mixSeed(fit_seed, 0x4000'0000'0000'0000ULL));
    Rng search(mixSeed(seed, 0x5ea4c0));
    const AttackConfig a = randomAttackCandidate(train);
    const AttackConfig b = randomAttackCandidate(search);
    EXPECT_TRUE(a.dataValue != b.dataValue || a.imm != b.imm ||
                a.branchPeriod != b.branchPeriod);
}

TEST(RngStreams, CacheSaltUnchangedBySurrogate)
{
    // Triage adds no new simulation semantics -- the exact engine,
    // its options and its payload codecs are untouched -- so the
    // cache salt must NOT have bumped with this feature.
    EXPECT_EQ(kResultCacheSalt, "penelope-result-cache-v1");
}

} // namespace
} // namespace penelope
