/**
 * @file
 * Tests for the register file: allocation lifecycle, occupancy and
 * bias accounting, the RINV/ISV mechanism and the replay driver.
 */

#include <gtest/gtest.h>

#include "regfile/driver.hh"
#include "regfile/regfile.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

RegFileConfig
smallRf()
{
    RegFileConfig cfg;
    cfg.numEntries = 8;
    cfg.width = 16;
    return cfg;
}

TEST(RegFile, AllocateReleaseCycle)
{
    RegisterFile rf(smallRf());
    const int a = rf.allocate(1);
    ASSERT_GE(a, 0);
    EXPECT_TRUE(rf.isBusy(a));
    EXPECT_EQ(rf.busyCount(), 1u);
    rf.release(a, 5, true);
    EXPECT_FALSE(rf.isBusy(a));
    EXPECT_EQ(rf.busyCount(), 0u);
}

TEST(RegFile, ExhaustsFreeList)
{
    RegisterFile rf(smallRf());
    for (int i = 0; i < 8; ++i)
        EXPECT_GE(rf.allocate(1), 0);
    EXPECT_EQ(rf.allocate(1), -1);
}

TEST(RegFile, FifoRotation)
{
    // Entries must rotate evenly (FIFO free list), the property
    // that makes register tags self-balanced.
    RegisterFile rf(smallRf());
    const int first = rf.allocate(1);
    rf.release(first, 2, true);
    // Allocate the remaining 7 entries, then the recycled one.
    std::vector<int> got;
    for (int i = 0; i < 8; ++i)
        got.push_back(rf.allocate(3));
    // 'first' must come back last, not immediately.
    EXPECT_EQ(got.back(), first);
}

TEST(RegFile, OccupancyTimeWeighted)
{
    RegisterFile rf(smallRf());
    const int a = rf.allocate(0);
    rf.release(a, 50, true);
    // One of eight entries busy for 50 of 100 cycles.
    EXPECT_NEAR(rf.occupancy(100), 50.0 / (8 * 100), 1e-9);
}

TEST(RegFile, BiasTracksStoredValues)
{
    RegisterFile rf(smallRf());
    const int a = rf.allocate(0);
    rf.write(static_cast<unsigned>(a), Word(0xffff), 0);
    const BitBiasTracker &bias = rf.finalizeBias(10);
    // Entry a held ones for 10 cycles; others held zeros.
    EXPECT_DOUBLE_EQ(bias.zeroProbability(0), 7.0 / 8.0);
}

TEST(RegFile, RinvSamplesInvertedWrites)
{
    RegFileConfig cfg = smallRf();
    cfg.rinvSampleInterval = 1; // sample every write
    RegisterFile rf(cfg);
    const int a = rf.allocate(0);
    rf.write(static_cast<unsigned>(a), Word(0x00ff), 1);
    EXPECT_EQ(rf.rinv().lo(), 0xff00u);
}

TEST(RegFile, IsvWritesRinvAtRelease)
{
    RegFileConfig cfg = smallRf();
    cfg.rinvSampleInterval = 1;
    RegisterFile rf(cfg);
    rf.enableIsv(true);
    const int a = rf.allocate(0);
    rf.write(static_cast<unsigned>(a), Word(0x000f), 1);
    rf.release(static_cast<unsigned>(a), 2, true);
    EXPECT_EQ(rf.isvStats().updatesApplied, 1u);
    // The entry now holds the inverted sample; bias over the idle
    // period reflects it.
    const BitBiasTracker &bias = rf.finalizeBias(12);
    // Bit 0 over all 8 entries x 12 cycles: entry a spends one
    // cycle at 1 (busy value 0x000f) and the rest at 0; the seven
    // untouched entries hold zeros throughout.
    EXPECT_NEAR(bias.zeroProbability(0), 95.0 / 96.0, 1e-9);
}

TEST(RegFile, IsvDiscardedWithoutPort)
{
    RegisterFile rf(smallRf());
    rf.enableIsv(true);
    const int a = rf.allocate(0);
    rf.write(static_cast<unsigned>(a), Word(1), 1);
    rf.release(static_cast<unsigned>(a), 2, false);
    EXPECT_EQ(rf.isvStats().updatesDiscarded, 1u);
    EXPECT_EQ(rf.isvStats().updatesApplied, 0u);
}

TEST(RegFile, IsvMeterThrottlesAtBalance)
{
    // Once inverted residence leads, updates are skipped so entries
    // hold inverted contents ~50% of overall time.
    RegFileConfig cfg = smallRf();
    cfg.numEntries = 2;
    RegisterFile rf(cfg);
    rf.enableIsv(true);
    Cycle now = 0;
    std::uint64_t applied_then_skipped = 0;
    for (int round = 0; round < 200; ++round) {
        const int e = rf.allocate(now);
        ASSERT_GE(e, 0);
        rf.write(static_cast<unsigned>(e), Word(0), now);
        now += 1; // short busy
        rf.release(static_cast<unsigned>(e), now, true);
        now += 9; // long idle
    }
    applied_then_skipped = rf.isvStats().updatesSkipped;
    EXPECT_GT(applied_then_skipped, 0u);
    EXPECT_GT(rf.isvStats().updatesApplied, 0u);
}

TEST(RegFile, IsvBalancesBiasedStream)
{
    // The headline Figure-6 property on a synthetic biased stream.
    RegFileConfig cfg;
    cfg.numEntries = 32;
    cfg.width = 16;
    RegisterFile rf(cfg);
    rf.enableIsv(true);
    Rng rng(5);
    Cycle now = 0;
    std::vector<int> live;
    for (int i = 0; i < 20000; ++i) {
        ++now;
        const int e = rf.allocate(now);
        if (e >= 0) {
            // Heavily biased program values: mostly zero.
            rf.write(static_cast<unsigned>(e),
                     Word(rng.nextBool(0.9) ? 0x0001 : 0xffff),
                     now);
            live.push_back(e);
        }
        if (live.size() > 12) {
            rf.release(static_cast<unsigned>(live.front()), now,
                       rng.nextBool(0.92));
            live.erase(live.begin());
        }
    }
    const BitBiasTracker &bias = rf.finalizeBias(now);
    EXPECT_LT(bias.maxWorstCaseStress(), 0.62);
}

TEST(RegFile, BaselineStaysBiased)
{
    // Without ISV the same stream leaves cells heavily biased.
    RegFileConfig cfg;
    cfg.numEntries = 32;
    cfg.width = 16;
    RegisterFile rf(cfg);
    Rng rng(5);
    Cycle now = 0;
    std::vector<int> live;
    for (int i = 0; i < 20000; ++i) {
        ++now;
        const int e = rf.allocate(now);
        if (e >= 0) {
            rf.write(static_cast<unsigned>(e),
                     Word(rng.nextBool(0.9) ? 0x0001 : 0xffff),
                     now);
            live.push_back(e);
        }
        if (live.size() > 12) {
            rf.release(static_cast<unsigned>(live.front()), now,
                       true);
            live.erase(live.begin());
        }
    }
    const BitBiasTracker &bias = rf.finalizeBias(now);
    EXPECT_GT(bias.maxWorstCaseStress(), 0.8);
}

// ---------------------------------------------------------- Driver

TEST(RegReplay, RunsAndReportsOccupancy)
{
    WorkloadSet w;
    RegFileConfig cfg;
    cfg.numEntries = 128;
    cfg.width = 32;
    RegisterFile rf(cfg);
    RegFileReplay replay(rf, RegReplayConfig{});
    TraceGenerator gen = w.generator(0);
    const RegReplayResult r = replay.run(gen, 20000);
    EXPECT_EQ(r.cycles, 20000u);
    EXPECT_GT(r.writes, 5000u);
    EXPECT_GT(r.occupancy, 0.2);
    EXPECT_LT(r.occupancy, 0.9);
}

TEST(RegReplay, ClockPersistsAcrossRuns)
{
    WorkloadSet w;
    RegisterFile rf{RegFileConfig()};
    RegFileReplay replay(rf, RegReplayConfig{});
    TraceGenerator gen = w.generator(1);
    const RegReplayResult r1 = replay.run(gen, 5000);
    const RegReplayResult r2 = replay.run(gen, 5000);
    EXPECT_EQ(r1.cycles, 5000u);
    EXPECT_EQ(r2.cycles, 10000u);
}

TEST(RegReplay, FpModeUsesFpUopsOnly)
{
    WorkloadSet w;
    RegFileConfig cfg;
    cfg.numEntries = 64;
    cfg.width = 80;
    RegisterFile rf(cfg);
    RegReplayConfig rc;
    rc.fp = true;
    RegFileReplay replay(rf, rc);
    // SpecFP suite trace: plenty of FP writes.
    const auto fp_traces = w.indicesForSuite(SuiteId::SpecFp2000);
    TraceGenerator gen = w.generator(fp_traces.front());
    const RegReplayResult r = replay.run(gen, 20000);
    EXPECT_GT(r.writes, 1000u);
    EXPECT_LT(r.occupancy, 1.0);
}

TEST(RegReplay, IsvImprovesWorstStress)
{
    WorkloadSet w;
    auto run = [&](bool isv) {
        RegFileConfig cfg;
        cfg.numEntries = 128;
        cfg.width = 32;
        RegisterFile rf(cfg);
        rf.enableIsv(isv);
        RegFileReplay replay(rf, RegReplayConfig{});
        TraceGenerator gen = w.generator(2);
        const RegReplayResult r = replay.run(gen, 40000);
        return rf.finalizeBias(r.cycles).maxWorstCaseStress();
    };
    const double baseline = run(false);
    const double isv = run(true);
    EXPECT_GT(baseline, 0.75);
    EXPECT_LT(isv, 0.62);
}

} // namespace
} // namespace penelope
