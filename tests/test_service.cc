/**
 * @file
 * Tests for the resident-service layer on top of src/net: backoff
 * determinism, fault-spec parsing and the frame-level fault seam,
 * ResultCache delta export / flush-to-disk, hung-worker forfeits by
 * heartbeat deadline, retry-budget exhaustion degrading a job to
 * Partial with an explicit manifest, worker reconnection across a
 * coordinator restart, delta entry streams, the SubmitJob/JobUpdate
 * client conversation against a resident coordinator, CancelJob,
 * and graceful stop semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/registry.hh"
#include "core/resultcache.hh"
#include "core/shardplan.hh"
#include "net/backoff.hh"
#include "net/coordinator.hh"
#include "net/faultinject.hh"
#include "net/protocol.hh"
#include "net/worker.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

using net::BackoffPolicy;
using net::CancelJobMessage;
using net::Coordinator;
using net::CoordinatorConfig;
using net::FaultAction;
using net::FaultConfig;
using net::FaultInjector;
using net::Frame;
using net::JobState;
using net::JobUpdateMessage;
using net::MessageType;
using net::RecvStatus;
using net::Socket;
using net::SubmitJobMessage;
using net::WorkerConfig;
using net::WorkerOutcome;
using net::WorkerStats;

using Clock = std::chrono::steady_clock;

/** Restores the process-wide injector to inert, whatever happens. */
struct FaultGuard
{
    FaultGuard() { FaultInjector::instance().disable(); }
    ~FaultGuard() { FaultInjector::instance().disable(); }
};

/** A connected loopback socket pair (server side accepted). */
struct LoopbackPair
{
    Socket listener;
    Socket client;
    Socket server;

    static LoopbackPair
    make()
    {
        LoopbackPair pair;
        std::string error;
        pair.listener = Socket::listenOn(0, &error);
        EXPECT_TRUE(pair.listener.valid()) << error;
        pair.client = Socket::connectTo(
            "127.0.0.1", pair.listener.boundPort(), &error);
        EXPECT_TRUE(pair.client.valid()) << error;
        pair.server = pair.listener.accept(2'000);
        EXPECT_TRUE(pair.server.valid());
        return pair;
    }
};

/** A light plan fixture (the service tests run several end-to-end
 *  coordinated runs; keep each one brisk). */
ShardPlan
samplePlan()
{
    ShardPlan plan;
    plan.experiments = {"fig6", "fig3"};
    plan.sliceCount = 3;
    plan.traceStride = 96;
    plan.uopsPerTrace = 1'000;
    plan.cacheUops = 1'000;
    plan.adderOperandSamples = 200;
    plan.profilingTraces = 60;
    plan.mechanismTimeScale = 0.05;
    return plan;
}

/** Render the plan's experiments unsharded with @p cache. */
std::string
renderPlan(const WorkloadSet &workload, const ShardPlan &plan,
           ResultCache *cache)
{
    registerBuiltinExperiments();
    std::ostringstream out;
    for (const std::string &name : plan.experiments) {
        const Experiment *experiment =
            ExperimentRegistry::instance().find(name);
        EXPECT_NE(experiment, nullptr) << name;
        ExperimentOptions options = plan.sliceOptions(0);
        options.shardIndex = 0;
        options.shardCount = 1;
        options.cache = cache;
        experiment->run({workload, options, out});
    }
    return out.str();
}

template <typename Message>
bool
sendMessage(Socket &sock, MessageType type, const Message &message)
{
    ByteWriter w;
    message.encode(w);
    return net::sendFrame(sock, type, w.view());
}

/** Receive the next JobUpdate on @p sock (fails the test on
 *  anything else). */
bool
recvUpdate(Socket &sock, JobUpdateMessage &update,
           int timeout_ms = 30'000)
{
    Frame frame;
    if (net::recvFrame(sock, frame, timeout_ms) != RecvStatus::Ok)
        return false;
    if (frame.type != MessageType::JobUpdate)
        return false;
    ByteReader r(frame.payload);
    return update.decode(r);
}

// ------------------------------------------------------- backoff

TEST(Backoff, DeterministicBoundedAndStreamIndependent)
{
    BackoffPolicy policy;
    policy.baseMs = 10;
    policy.capMs = 200;
    policy.seed = 42;

    bool any_differs = false;
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        const int a = policy.delayMs(1, attempt);
        const int b = policy.delayMs(1, attempt);
        EXPECT_EQ(a, b) << "attempt " << attempt;
        EXPECT_GE(a, policy.baseMs);
        EXPECT_LE(a, policy.capMs);
        if (a != policy.delayMs(2, attempt))
            any_differs = true;
    }
    // Distinct streams draw independent schedules.
    EXPECT_TRUE(any_differs);

    // A different seed replays a different schedule.
    BackoffPolicy other = policy;
    other.seed = 43;
    bool seed_differs = false;
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        if (policy.delayMs(1, attempt) != other.delayMs(1, attempt))
            seed_differs = true;
    }
    EXPECT_TRUE(seed_differs);

    // Degenerate knobs never divide by zero or underflow.
    BackoffPolicy tight;
    tight.baseMs = 0;
    tight.capMs = 0;
    EXPECT_GE(tight.delayMs(9, 3), 1);
}

// ---------------------------------------------------- fault specs

TEST(FaultSpec, ParsesTheDocumentedGrammar)
{
    FaultConfig config;
    std::string error;
    ASSERT_TRUE(FaultConfig::parse(
        "seed=7,drop=0.03,flip=0.02,truncate=0.01,halfclose=0.01,"
        "delay=0.05:15,stall-after=3,stall-ms=100",
        config, &error))
        << error;
    EXPECT_EQ(config.seed, 7u);
    EXPECT_DOUBLE_EQ(config.dropP, 0.03);
    EXPECT_DOUBLE_EQ(config.flipP, 0.02);
    EXPECT_DOUBLE_EQ(config.truncateP, 0.01);
    EXPECT_DOUBLE_EQ(config.halfCloseP, 0.01);
    EXPECT_DOUBLE_EQ(config.delayP, 0.05);
    EXPECT_EQ(config.delayMs, 15);
    EXPECT_EQ(config.stallAfterOps, 3u);
    EXPECT_EQ(config.stallMs, 100);
    EXPECT_TRUE(config.active());

    // Empty spec: valid and inert.
    FaultConfig inert;
    ASSERT_TRUE(FaultConfig::parse("", inert, &error));
    EXPECT_FALSE(inert.active());

    // Delay without an explicit duration keeps the default.
    FaultConfig delay_only;
    ASSERT_TRUE(FaultConfig::parse("delay=0.5", delay_only, &error));
    EXPECT_EQ(delay_only.delayMs, 20);
}

TEST(FaultSpec, RejectsMalformedFields)
{
    const char *bad[] = {
        "drop=1.5",       // probability out of range
        "drop=abc",       // not a number
        "wat=1",          // unknown key
        "drop",           // missing '='
        "seed=-3",        // not a u64
        "delay=0.1:0",    // zero delay
        "stall-ms=0",     // zero stall
        "drop=0.5,flip=0.5", // no room for the no-fault outcome
    };
    for (const char *spec : bad) {
        FaultConfig config;
        std::string error;
        EXPECT_FALSE(FaultConfig::parse(spec, config, &error))
            << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(FaultInject, ScheduleIsDeterministicPerConnectionAndOp)
{
    FaultGuard guard;
    FaultConfig config;
    config.seed = 9;
    config.dropP = 0.4;
    config.flipP = 0.3;
    FaultInjector::instance().configure(config);

    unsigned drops = 0;
    unsigned nones = 0;
    for (std::uint64_t conn = 1; conn <= 4; ++conn) {
        for (std::uint64_t op = 0; op < 32; ++op) {
            std::size_t cut1 = 0;
            std::size_t cut2 = 0;
            const FaultAction a = FaultInjector::instance()
                .sendAction(conn, op, 200, cut1);
            const FaultAction b = FaultInjector::instance()
                .sendAction(conn, op, 200, cut2);
            EXPECT_EQ(a, b);
            EXPECT_EQ(cut1, cut2);
            if (a == FaultAction::Drop)
                ++drops;
            if (a == FaultAction::None)
                ++nones;
        }
    }
    // With these probabilities both outcomes must occur.
    EXPECT_GT(drops, 0u);
    EXPECT_GT(nones, 0u);
}

TEST(FaultInject, DroppedFramesVanishButSendSucceeds)
{
    FaultGuard guard;
    FaultConfig config;
    config.dropP = 1.0;
    FaultInjector::instance().configure(config);

    LoopbackPair pair = LoopbackPair::make();
    EXPECT_TRUE(
        net::sendFrame(pair.client, MessageType::Hello, "payload"));
    Frame out;
    EXPECT_EQ(net::recvFrame(pair.server, out, 200),
              RecvStatus::Closed);
    EXPECT_GE(FaultInjector::instance().stats().drops, 1u);
}

TEST(FaultInject, FlippedFramesNeverDeliverAlteredPayloads)
{
    FaultGuard guard;
    FaultConfig config;
    config.flipP = 0.9; // parseable bound; force via configure
    config.dropP = 0.0;
    FaultInjector::instance().configure(config);

    // Whatever byte the schedule flips -- payload, length, even the
    // capability flags -- an Ok receive implies an intact payload.
    unsigned delivered = 0;
    unsigned rejected = 0;
    for (int i = 0; i < 12; ++i) {
        LoopbackPair pair = LoopbackPair::make();
        ASSERT_TRUE(net::sendFrame(pair.client, MessageType::Result,
                                   "the slice entry bytes"));
        pair.client.close();
        Frame out;
        const RecvStatus status =
            net::recvFrame(pair.server, out, 2'000);
        if (status == RecvStatus::Ok) {
            EXPECT_EQ(out.payload, "the slice entry bytes");
            ++delivered;
        } else {
            ++rejected;
        }
    }
    // With flipP = 0.9 over 12 frames, at least one flip must have
    // been rejected (a flipped flags word is the only intact case).
    EXPECT_GT(rejected, 0u);
    (void)delivered;
}

TEST(FaultInject, TruncatedFramesReadAsClosed)
{
    FaultGuard guard;
    FaultConfig config;
    config.truncateP = 0.9;
    FaultInjector::instance().configure(config);

    unsigned faulted = 0;
    for (int i = 0; i < 12; ++i) {
        LoopbackPair pair = LoopbackPair::make();
        net::sendFrame(pair.client, MessageType::Result,
                       "truncation fodder payload");
        pair.client.close();
        Frame out;
        const RecvStatus status =
            net::recvFrame(pair.server, out, 2'000);
        if (status != RecvStatus::Ok)
            ++faulted;
        else
            EXPECT_EQ(out.payload, "truncation fodder payload");
    }
    EXPECT_GT(faulted, 0u);
    EXPECT_GE(FaultInjector::instance().stats().truncates, 1u);
}

TEST(FaultInject, StallFailsTheSendAfterTheConfiguredOp)
{
    FaultGuard guard;
    FaultConfig config;
    config.stallAfterOps = 1;
    config.stallMs = 50;
    FaultInjector::instance().configure(config);

    LoopbackPair pair = LoopbackPair::make();
    EXPECT_TRUE(
        net::sendFrame(pair.client, MessageType::Hello, "first"));
    const Clock::time_point t0 = Clock::now();
    EXPECT_FALSE(
        net::sendFrame(pair.client, MessageType::Hello, "second"));
    EXPECT_GE(Clock::now() - t0, std::chrono::milliseconds(45));
    EXPECT_GE(FaultInjector::instance().stats().stalls, 1u);
}

// --------------------------------------- cache deltas and flushes

TEST(ServiceCache, DeltaExportSendsEachEntryOnce)
{
    ResultCache cache;
    const Hash128 k1{0x1111, 0x2222};
    const Hash128 k2{0x3333, 0x4444};
    cache.store(k1, "first payload");
    cache.store(k2, "second payload");

    std::unordered_set<Hash128, Hash128Hasher> seen;
    std::string first;
    cache.exportNewEntries(seen, first);
    EXPECT_EQ(first.size(), cache.exportByteSize());

    ResultCache imported;
    ASSERT_TRUE(imported.importFromBytes(first));
    EXPECT_EQ(imported.size(), 2u);

    // Nothing new: the delta degenerates to a bare header that
    // still imports cleanly as zero entries.
    std::string empty_delta;
    cache.exportNewEntries(seen, empty_delta);
    EXPECT_LT(empty_delta.size(), first.size());
    ResultCache none;
    ASSERT_TRUE(none.importFromBytes(empty_delta));
    EXPECT_EQ(none.size(), 0u);

    // A later store travels in the next delta, alone.
    const Hash128 k3{0x5555, 0x6666};
    cache.store(k3, "third payload");
    std::string delta;
    cache.exportNewEntries(seen, delta);
    ASSERT_TRUE(imported.importFromBytes(delta));
    EXPECT_EQ(imported.size(), 3u);
    std::string payload;
    ASSERT_TRUE(imported.lookup(k3, payload));
    EXPECT_EQ(payload, "third payload");
}

TEST(ServiceCache, FlushPersistsImportedEntriesAcrossRestart)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
        "penelope_service_flush_test";
    fs::remove_all(dir);

    ResultCache source;
    const Hash128 k1{0xaaaa, 0xbbbb};
    const Hash128 k2{0xcccc, 0xdddd};
    const Hash128 k3{0xeeee, 0xffff};
    source.store(k1, "imported one");
    source.store(k2, "imported two");
    std::string bytes;
    source.exportToBytes(bytes);

    {
        ResultCache disk(dir.string());
        disk.store(k3, "stored directly");
        ASSERT_TRUE(disk.importFromBytes(bytes));
        // Only the imported entries need flushing; store() already
        // persisted k3 as it went.
        EXPECT_EQ(disk.flushToDisk(), 2u);
        EXPECT_EQ(disk.flushToDisk(), 0u);
    }

    // A restarted service serves all three warm.
    ResultCache reopened(dir.string());
    std::string payload;
    ASSERT_TRUE(reopened.lookup(k1, payload));
    EXPECT_EQ(payload, "imported one");
    ASSERT_TRUE(reopened.lookup(k2, payload));
    EXPECT_EQ(payload, "imported two");
    ASSERT_TRUE(reopened.lookup(k3, payload));
    EXPECT_EQ(payload, "stored directly");

    fs::remove_all(dir);
}

// ------------------------------------------- coordinated failures

TEST(Service, HungWorkerForfeitsByHeartbeatDeadline)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    config.workersExpected = 2;
    config.sliceTimeoutMs = 600'000; // only the deadline can save us
    config.heartbeatTimeoutMs = 1'000;
    config.backoffBaseMs = 10;
    config.backoffCapMs = 50;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    // The hung worker takes its first assignment and goes silent
    // while keeping the connection open: invisible to TCP, caught
    // only by the heartbeat deadline.
    WorkerConfig hung;
    hung.host = "127.0.0.1";
    hung.port = coordinator.port();
    hung.hangAfterAssignments = 1;
    hung.hangHoldMs = 60'000;
    ResultCache hung_cache;
    WorkerOutcome hung_outcome = WorkerOutcome::Finished;
    std::thread silent([&] {
        std::string werr;
        hung_outcome = net::runWorker(hung, workload, hung_cache,
                                      nullptr, &werr);
    });

    // Let the hung worker claim first, then send in the rescuer.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(10);
    while (coordinator.jobState(0) != JobState::Running &&
           Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(coordinator.jobState(0), JobState::Running);

    WorkerConfig good;
    good.host = "127.0.0.1";
    good.port = coordinator.port();
    good.heartbeatIntervalMs = 50;
    // Stretch each slice well past the heartbeat interval: the
    // rescuer is slow but heartbeating, so the deadline must not
    // forfeit it -- and the coordinator must see its beats.
    good.slowFactor = 20.0;
    ResultCache good_cache;
    WorkerStats good_stats;
    WorkerOutcome good_outcome = WorkerOutcome::Aborted;
    std::thread rescuer([&] {
        std::string werr;
        good_outcome = net::runWorker(good, workload, good_cache,
                                      &good_stats, &werr);
    });

    silent.join();
    rescuer.join();
    serve.join();

    // The forfeit closed the hung connection, so the worker exits
    // bounded instead of holding its slice for hangHoldMs.
    EXPECT_EQ(hung_outcome, WorkerOutcome::Hung);
    EXPECT_EQ(good_outcome, WorkerOutcome::Finished);
    EXPECT_GE(coordinator.stats().hungForfeits, 1u);
    EXPECT_GE(coordinator.stats().reassignments, 1u);
    EXPECT_EQ(coordinator.jobState(0), JobState::Complete);
    EXPECT_GE(coordinator.stats().heartbeats, 1u);

    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(collected.stats().stores, 0u);
}

TEST(Service, RetryBudgetExhaustionDegradesToPartialManifest)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    config.retryBudget = 0; // every forfeit is final
    config.backoffBaseMs = 10;
    config.backoffCapMs = 50;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    // Each saboteur takes one assignment and drops the connection;
    // with a zero retry budget each loss fails its slice outright,
    // and after the last one the job must finalize Partial instead
    // of waiting forever for workers that will never come.
    for (std::uint32_t s = 0; s < plan.sliceCount; ++s) {
        WorkerConfig bad;
        bad.host = "127.0.0.1";
        bad.port = coordinator.port();
        bad.abortAfterAssignments = 1;
        ResultCache bad_cache;
        WorkerOutcome outcome = WorkerOutcome::Finished;
        std::thread saboteur([&] {
            std::string werr;
            outcome = net::runWorker(bad, workload, bad_cache,
                                     nullptr, &werr);
        });
        saboteur.join();
        EXPECT_EQ(outcome, WorkerOutcome::Aborted);
    }
    serve.join();

    EXPECT_EQ(coordinator.jobState(0), JobState::Partial);
    EXPECT_EQ(coordinator.stats().slicesFailed, plan.sliceCount);
    const std::vector<std::uint32_t> manifest =
        coordinator.incompleteSlices(0);
    ASSERT_EQ(manifest.size(), plan.sliceCount);
    for (std::uint32_t s = 0; s < plan.sliceCount; ++s)
        EXPECT_EQ(manifest[s], s);

    // The degraded cache still renders correctly -- the missing
    // slices are simply recomputed locally.
    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
}

TEST(Service, WorkerReconnectsAcrossCoordinatorRestart)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    // Phase one: a stand-in coordinator that accepts the worker,
    // reads its Hello and dies -- the restart-in-progress picture.
    std::string error;
    Socket stub = Socket::listenOn(0, &error);
    ASSERT_TRUE(stub.valid()) << error;
    const std::uint16_t port = stub.boundPort();

    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = port;
    wc.connectRetryMs = 100;
    wc.reconnectBudgetMs = 30'000;
    ResultCache worker_cache;
    WorkerStats stats;
    WorkerOutcome outcome = WorkerOutcome::Aborted;
    std::thread worker([&] {
        std::string werr;
        outcome = net::runWorker(wc, workload, worker_cache,
                                 &stats, &werr);
    });

    {
        Socket conn = stub.accept(10'000);
        ASSERT_TRUE(conn.valid());
        Frame hello;
        ASSERT_EQ(net::recvFrame(conn, hello, 5'000),
                  RecvStatus::Ok);
        EXPECT_EQ(hello.type, MessageType::Hello);
        conn.close();
    }
    stub.close();

    // Phase two: the real coordinator comes back on the same port;
    // the worker's reconnect loop must find it and finish the run.
    ResultCache collected;
    CoordinatorConfig config;
    config.port = port;
    std::optional<Coordinator> coordinator;
    bool started = false;
    for (int i = 0; i < 50 && !started; ++i) {
        coordinator.emplace(plan, collected, config);
        started = coordinator->start(&error);
        if (!started)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
    }
    ASSERT_TRUE(started) << error;
    std::thread serve([&] { coordinator->run(); });

    worker.join();
    serve.join();

    EXPECT_EQ(outcome, WorkerOutcome::Finished);
    EXPECT_GE(stats.reconnects, 1u);
    EXPECT_EQ(stats.slicesRun, plan.sliceCount);
    EXPECT_EQ(coordinator->jobState(0), JobState::Complete);

    const std::string merged =
        renderPlan(workload, plan, &collected);
    EXPECT_EQ(merged, reference);
    EXPECT_EQ(collected.stats().stores, 0u);
}

TEST(Service, DeltaStreamsResendLessThanFullExports)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();

    ResultCache collected;
    CoordinatorConfig config;
    Coordinator coordinator(plan, collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = coordinator.port();
    ResultCache worker_cache;
    WorkerStats stats;
    WorkerOutcome outcome = WorkerOutcome::Aborted;
    std::thread worker([&] {
        std::string werr;
        outcome = net::runWorker(wc, workload, worker_cache,
                                 &stats, &werr);
    });
    worker.join();
    serve.join();

    ASSERT_EQ(outcome, WorkerOutcome::Finished);
    ASSERT_EQ(stats.slicesRun, plan.sliceCount);
    // One worker ran every slice over one connection: slices after
    // the first resend nothing already acknowledged, so the delta
    // bytes actually sent undercut what full exports would cost.
    EXPECT_GT(stats.sentBytes, 0u);
    EXPECT_LT(stats.sentBytes, stats.fullExportBytes);
    EXPECT_EQ(coordinator.jobState(0), JobState::Complete);
}

// ------------------------------------------- resident job service

TEST(Service, ResidentSubmitJobStreamsToCompletion)
{
    const WorkloadSet workload;
    const ShardPlan plan = samplePlan();
    const std::string reference =
        renderPlan(workload, plan, nullptr);

    ResultCache collected;
    CoordinatorConfig config;
    Coordinator coordinator(collected, config); // resident: no job
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    WorkerConfig wc;
    wc.host = "127.0.0.1";
    wc.port = coordinator.port();
    wc.heartbeatIntervalMs = 100;
    ResultCache worker_cache;
    WorkerOutcome outcome = WorkerOutcome::Aborted;
    std::thread worker([&] {
        std::string werr;
        outcome = net::runWorker(wc, workload, worker_cache,
                                 nullptr, &werr);
    });

    // The client conversation: submit, then stream updates (and
    // their entry payloads) until the job goes final.
    Socket client = Socket::connectTo("127.0.0.1",
                                      coordinator.port(), &error);
    ASSERT_TRUE(client.valid()) << error;
    SubmitJobMessage submit;
    submit.plan = plan;
    ASSERT_TRUE(
        sendMessage(client, MessageType::SubmitJob, submit));

    ResultCache client_cache;
    JobUpdateMessage update;
    unsigned updates = 0;
    do {
        ASSERT_TRUE(recvUpdate(client, update)) << updates;
        ++updates;
        ASSERT_NE(update.state, JobState::Rejected);
        if (!update.entries.empty()) {
            ASSERT_TRUE(
                client_cache.importFromBytes(update.entries));
        }
    } while (!net::jobStateFinal(update.state));

    EXPECT_EQ(update.state, JobState::Complete);
    EXPECT_EQ(update.slicesDone, plan.sliceCount);
    EXPECT_EQ(update.slicesTotal, plan.sliceCount);
    EXPECT_TRUE(update.incompleteSlices.empty());
    client.close();

    coordinator.requestStop();
    worker.join();
    serve.join();

    EXPECT_EQ(outcome, WorkerOutcome::Finished);
    EXPECT_EQ(coordinator.stats().jobsSubmitted, 1u);
    EXPECT_EQ(coordinator.stats().jobsFinished, 1u);

    // The client's streamed entries render bit-identically with no
    // local recomputation at all.
    const std::string rendered =
        renderPlan(workload, plan, &client_cache);
    EXPECT_EQ(rendered, reference);
    EXPECT_EQ(client_cache.stats().stores, 0u);
}

TEST(Service, CancelJobGoesFinalWithoutWorkers)
{
    ResultCache collected;
    CoordinatorConfig config;
    Coordinator coordinator(collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    Socket client = Socket::connectTo("127.0.0.1",
                                      coordinator.port(), &error);
    ASSERT_TRUE(client.valid()) << error;
    SubmitJobMessage submit;
    submit.plan = samplePlan();
    ASSERT_TRUE(
        sendMessage(client, MessageType::SubmitJob, submit));

    // The acceptance update names the job to cancel.
    JobUpdateMessage update;
    ASSERT_TRUE(recvUpdate(client, update));
    ASSERT_NE(update.state, JobState::Rejected);
    const std::uint32_t job = update.jobId;

    CancelJobMessage cancel;
    cancel.jobId = job;
    ASSERT_TRUE(
        sendMessage(client, MessageType::CancelJob, cancel));
    while (!net::jobStateFinal(update.state))
        ASSERT_TRUE(recvUpdate(client, update));
    EXPECT_EQ(update.state, JobState::Cancelled);
    client.close();

    // An unknown id, by contrast, is rejected outright.
    Socket other = Socket::connectTo("127.0.0.1",
                                     coordinator.port(), &error);
    ASSERT_TRUE(other.valid()) << error;
    CancelJobMessage bogus;
    bogus.jobId = 0xdeadu;
    ASSERT_TRUE(
        sendMessage(other, MessageType::CancelJob, bogus));
    JobUpdateMessage rejected;
    ASSERT_TRUE(recvUpdate(other, rejected));
    EXPECT_EQ(rejected.state, JobState::Rejected);
    other.close();

    coordinator.requestStop();
    serve.join();
    EXPECT_EQ(coordinator.jobState(job), JobState::Cancelled);
}

TEST(Service, GracefulStopFinalizesJobsAsPartial)
{
    ResultCache collected;
    CoordinatorConfig config;
    config.drainTimeoutMs = 2'000;
    Coordinator coordinator(collected, config);
    std::string error;
    ASSERT_TRUE(coordinator.start(&error)) << error;
    std::thread serve([&] { coordinator.run(); });

    Socket client = Socket::connectTo("127.0.0.1",
                                      coordinator.port(), &error);
    ASSERT_TRUE(client.valid()) << error;
    SubmitJobMessage submit;
    submit.plan = samplePlan();
    ASSERT_TRUE(
        sendMessage(client, MessageType::SubmitJob, submit));

    JobUpdateMessage update;
    ASSERT_TRUE(recvUpdate(client, update));
    ASSERT_NE(update.state, JobState::Rejected);

    // Stop with no workers attached: nothing can land, so the job
    // must degrade to an explicit Partial -- with the full slice
    // manifest -- and the client must still be told before the
    // service exits.
    coordinator.requestStop();
    while (!net::jobStateFinal(update.state))
        ASSERT_TRUE(recvUpdate(client, update));
    EXPECT_EQ(update.state, JobState::Partial);
    EXPECT_EQ(update.slicesDone, 0u);
    ASSERT_EQ(update.incompleteSlices.size(),
              samplePlan().sliceCount);
    client.close();
    serve.join();

    EXPECT_EQ(coordinator.jobState(update.jobId),
              JobState::Partial);

    // A submit after the stop is rejected, not silently queued.
    // (The listener is down, so the connection itself now fails.)
    Socket late = Socket::connectTo("127.0.0.1",
                                    coordinator.port(), &error);
    EXPECT_FALSE(late.valid());
}

} // namespace
} // namespace penelope
