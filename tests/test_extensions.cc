/**
 * @file
 * Tests for the extension modules: input-latch aging (Section 3.3)
 * and the NBTI-aware branch predictor (the cache-like block the
 * paper names but does not measure).
 */

#include <gtest/gtest.h>

#include "cache/branch_predictor.hh"
#include "circuit/latch.hh"
#include "common/rng.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ----------------------------------------------------------- Latch

TEST(Latch, BalancedContentsNeedNoMitigation)
{
    LatchBank latches(8);
    latches.hold(Word(0x55), 10);
    latches.hold(Word(0xaa), 10);
    EXPECT_DOUBLE_EQ(latches.worstCaseStress(), 0.5);
    EXPECT_FALSE(latches.needsMitigation(
        GuardbandModel::paperCalibrated()));
}

TEST(Latch, WideSizingToleratesModerateBias)
{
    // Section 3.3: latch transistors are large, so even a fairly
    // biased latch often needs no dedicated mechanism.
    LatchBank latches(8);
    latches.hold(Word(0x00), 8);
    latches.hold(Word(0xff), 2);
    EXPECT_DOUBLE_EQ(latches.worstCaseStress(), 0.8);
    const GuardbandModel model = GuardbandModel::paperCalibrated();
    EXPECT_LT(latches.guardband(model),
              model.guardbandForZeroProb(0.8));
    EXPECT_FALSE(latches.needsMitigation(model));
}

TEST(Latch, ExtremeBiasEventuallyNeedsMitigation)
{
    LatchBank latches(4);
    latches.hold(Word(0x0), 1000);
    const GuardbandModel model = GuardbandModel::paperCalibrated();
    // 100% stress, wide attenuation 0.08: 1.6% < 2% balanced ->
    // still below the narrow-balanced margin by design.
    EXPECT_FALSE(latches.needsMitigation(model));
    // With a less aggressive wide attenuation it crosses the line.
    const GuardbandModel weak(0.02, 0.20, 0.5);
    EXPECT_TRUE(latches.needsMitigation(weak));
}

TEST(Latch, IdlePairAlternationBalancesLatches)
{
    // Section 4.3: alternating <0,0,0> / <1,1,1> during idle makes
    // the input latches hold opposite values for similar times.
    LatchBank latches(65); // a, b, cin of a 32-bit adder
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        // 21% of the time: biased real operands.
        if (rng.nextBool(0.21)) {
            latches.hold(BitWord(65, 0x13, 0), 1);
        } else if (i % 2 == 0) {
            latches.hold(BitWord(65, 0, 0), 1);
        } else {
            latches.hold(BitWord(65, ~Word(0), 1), 1);
        }
    }
    EXPECT_LT(latches.worstCaseStress(), 0.65);
}

TEST(Latch, BitWordOverloadMatchesWordOverload)
{
    LatchBank a(16);
    LatchBank b(16);
    a.hold(Word(0x1234), 7);
    b.hold(BitWord(16, 0x1234), 7);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.bias().zeroProbability(i),
                         b.bias().zeroProbability(i));
}

TEST(Latch, HoldBatchMatchesScalarHoldsBitForBit)
{
    // The 64-wide path must add exactly the integers 64 scalar
    // hold() calls add, for full and partial batches, any dt, and
    // widths beyond one lane word (the 65-bit adder-input bank).
    for (unsigned width : {8u, 32u, 65u, 80u}) {
        Rng rng(0x1a7c + width);
        LatchBank batched(width);
        LatchBank scalar(width);
        for (int round = 0; round < 30; ++round) {
            std::vector<BitWord> values;
            std::vector<std::uint64_t> words(width, 0);
            for (unsigned v = 0; v < 64; ++v) {
                values.emplace_back(width, rng(), rng());
                for (unsigned b = 0; b < width; ++b) {
                    if (values[v].bit(b))
                        words[b] |= std::uint64_t(1) << v;
                }
            }
            const std::uint64_t lane_mask =
                round % 3 == 0 ? ~std::uint64_t(0) : rng() | 1;
            const std::uint64_t dt = 1 + rng.nextInt(1000);
            batched.holdBatch(words.data(), lane_mask, dt);
            for (unsigned v = 0; v < 64; ++v) {
                if ((lane_mask >> v) & 1)
                    scalar.hold(values[v], dt);
            }
        }
        ASSERT_EQ(batched.bias().totalTime(),
                  scalar.bias().totalTime());
        for (unsigned b = 0; b < width; ++b)
            ASSERT_EQ(batched.bias().zeroTime(b),
                      scalar.bias().zeroTime(b))
                << "width " << width << " bit " << b;
        EXPECT_EQ(batched.worstCaseStress(),
                  scalar.worstCaseStress());
        const GuardbandModel model =
            GuardbandModel::paperCalibrated();
        EXPECT_EQ(batched.guardband(model),
                  scalar.guardband(model));
        EXPECT_EQ(batched.needsMitigation(model),
                  scalar.needsMitigation(model));
    }
}

// ------------------------------------------------- BranchPredictor

TEST(BranchPredictor, LearnsStableBranch)
{
    BranchPredictor bp{BranchPredictorConfig()};
    // Always-taken branch at one PC: after warmup, all correct.
    for (int i = 0; i < 4; ++i)
        bp.predictAndTrain(0x400000, true, i);
    BranchPredictorStats before = bp.stats();
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(bp.predictAndTrain(0x400000, true, 10 + i));
    EXPECT_EQ(bp.stats().correct - before.correct, 100u);
}

TEST(BranchPredictor, HysteresisSurvivesOneFlip)
{
    BranchPredictor bp{BranchPredictorConfig()};
    for (int i = 0; i < 4; ++i)
        bp.predictAndTrain(0x1000, true, i);
    // One not-taken outlier must not flip the prediction.
    bp.predictAndTrain(0x1000, false, 5);
    EXPECT_TRUE(bp.predictAndTrain(0x1000, true, 6));
}

TEST(BranchPredictor, InvertedWindowReducesAccuracy)
{
    BranchPredictorConfig plain;
    BranchPredictorConfig inverted = plain;
    inverted.invertRatio = 0.5;
    BranchPredictor a(plain);
    BranchPredictor b(inverted);
    Rng rng(11);
    for (int i = 0; i < 40000; ++i) {
        // PCs cover the whole table so both the live and the
        // inverted halves are exercised.
        const Addr pc = 0x1000 + rng.nextInt(4096) * 4;
        const bool taken = (pc >> 4) & 1; // per-branch stable
        a.predictAndTrain(pc, taken, i);
        b.predictAndTrain(pc, taken, i);
    }
    EXPECT_GT(a.stats().accuracy(), 0.93);
    // Half the table is out of service: accuracy drops but the
    // fallback keeps it well above chance.
    EXPECT_LT(b.stats().accuracy(), a.stats().accuracy());
    EXPECT_GT(b.stats().accuracy(), 0.6);
    EXPECT_NEAR(b.invertRatio(), 0.5, 0.01);
}

TEST(BranchPredictor, RotationMovesWindow)
{
    BranchPredictorConfig cfg;
    cfg.tableEntries = 16;
    cfg.invertRatio = 0.25;
    cfg.rotatePeriod = 10;
    BranchPredictor bp(cfg);
    EXPECT_NEAR(bp.invertRatio(), 0.25, 0.01);
    for (Cycle t = 0; t < 200; t += 10)
        bp.tick(t);
    // Ratio invariant under rotation.
    EXPECT_NEAR(bp.invertRatio(), 0.25, 0.01);
}

TEST(BranchPredictor, InversionBalancesCounterBias)
{
    // Counters of mostly-not-taken branches sit at 0 (both bits
    // zero); inversion balances the cells.
    auto worst = [](double ratio) {
        BranchPredictorConfig cfg;
        cfg.tableEntries = 64;
        cfg.invertRatio = ratio;
        cfg.rotatePeriod = 50;
        BranchPredictor bp(cfg);
        Rng rng(7);
        Cycle now = 0;
        for (int i = 0; i < 40000; ++i) {
            ++now;
            bp.tick(now);
            const Addr pc = 0x1000 + rng.nextInt(64) * 4;
            bp.predictAndTrain(pc, rng.nextBool(0.05), now);
        }
        BranchPredictor *p = &bp;
        return p->finalizeBias(now).maxWorstCaseStress();
    };
    const double unprotected = worst(0.0);
    const double protected_ = worst(0.5);
    EXPECT_GT(unprotected, 0.9);
    EXPECT_LT(protected_, unprotected - 0.2);
}

TEST(BranchPredictor, WorkloadTakenRateLearnable)
{
    // Against the synthetic workload's branch stream.
    WorkloadSet w;
    TraceGenerator gen = w.generator(0);
    BranchPredictor bp{BranchPredictorConfig()};
    Cycle now = 0;
    unsigned branches = 0;
    while (branches < 5000) {
        const Uop uop = gen.next();
        ++now;
        if (uop.cls != UopClass::Branch)
            continue;
        ++branches;
        // Synthesise a PC from the uop stream position.
        bp.predictAndTrain(0x8000 + (branches % 256) * 4,
                           uop.taken, now);
    }
    // Bernoulli-taken branches: accuracy must beat always-wrong
    // and roughly track max(p, 1-p).
    EXPECT_GT(bp.stats().accuracy(), 0.5);
}

} // namespace
} // namespace penelope
