/**
 * @file
 * Tests for the parallel experiment engine: the thread pool, the
 * parallelFor primitive, mergeable statistics, the experiment
 * registry, and — the load-bearing property — that every experiment
 * produces bit-identical statistics for any worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cache/timing.hh"
#include "common/stats.hh"
#include "common/threadpool.hh"
#include "core/engine.hh"
#include "core/registry.hh"
#include "scheduler/profile.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { ++counter; });
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    pool.submit([&counter] { ++counter; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(counter.load(), 1);
    // The pool stays usable after a failed task.
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, MemberParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // The pool is reusable across parallel regions (this is the
    // persistent-pool property penelope_bench relies on).
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, MemberParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // Still usable afterwards.
    std::atomic<int> counter{0};
    pool.parallelFor(5, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 5);
}

TEST(ParallelFor, SharedPoolMatchesPerCallPool)
{
    ThreadPool pool(4);
    for (unsigned jobs : {2u, 8u}) {
        std::vector<std::atomic<int>> hits(500);
        parallelFor(
            hits.size(), jobs,
            [&](std::size_t i) { ++hits[i]; }, &pool);
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
    // jobs <= 1 stays a strictly serial inline loop even with a
    // pool attached.
    std::vector<std::size_t> order;
    parallelFor(
        5, 1, [&](std::size_t i) { order.push_back(i); }, &pool);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ----------------------------------------------------- parallelFor

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        std::vector<std::atomic<int>> hits(1000);
        parallelFor(hits.size(), jobs,
                    [&](std::size_t i) { ++hits[i]; });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, MoreJobsThanItems)
{
    std::atomic<int> sum{0};
    parallelFor(3, 16, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    bool ran = false;
    parallelFor(0, 8, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [](std::size_t i) {
                        if (i == 42)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, SerialPathRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------- Engine

TEST(Engine, MapPreservesItemOrder)
{
    const Engine engine(4);
    std::vector<unsigned> items(64);
    std::iota(items.begin(), items.end(), 0u);
    const auto squares = engine.map<unsigned>(
        items, [](unsigned item, std::size_t) {
            return item * item;
        });
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], items[i] * items[i]);
}

// ---------------------------------------------------------- merges

TEST(StatsMerge, MatchesSequentialAccumulation)
{
    Rng rng(7);
    std::vector<double> samples(500);
    for (double &s : samples)
        s = rng.nextGaussian();

    RunningStats whole;
    for (double s : samples)
        whole.add(s);

    RunningStats left;
    RunningStats right;
    for (std::size_t i = 0; i < samples.size(); ++i)
        (i < 200 ? left : right).add(samples[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
}

TEST(StatsMerge, MergeIntoEmptyCopies)
{
    RunningStats a;
    RunningStats b;
    b.add(2.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(SchedulerStressMerge, AggregatesTimeWeighted)
{
    const WorkloadSet workload;
    const std::vector<unsigned> traces = {0, 100};

    // Two per-trace snapshots merged...
    std::vector<SchedulerStress> shards;
    for (unsigned index : traces) {
        Scheduler sched{SchedulerConfig{}};
        SchedReplayConfig cfg;
        cfg.seed = mixSeed(cfg.seed, index);
        SchedulerReplay replay(sched, cfg);
        TraceGenerator gen = workload.generator(index);
        const SchedReplayResult r = replay.run(gen, 2'000);
        shards.push_back(sched.snapshotStress(r.cycles));
    }
    SchedulerStress merged = shards.front();
    merged.merge(shards.back());

    EXPECT_EQ(merged.cycles,
              shards.front().cycles + shards.back().cycles);
    // ...bracket the aggregate between the per-trace extremes.
    const double lo = std::min(shards.front().occupancy(),
                               shards.back().occupancy());
    const double hi = std::max(shards.front().occupancy(),
                               shards.back().occupancy());
    EXPECT_GE(merged.occupancy(), lo - 1e-12);
    EXPECT_LE(merged.occupancy(), hi + 1e-12);
    EXPECT_EQ(merged.biasVector().size(),
              fieldLayout().totalBits());
}

// ------------------------------------------------ jobs determinism

ExperimentOptions
tinyOptions(unsigned jobs)
{
    ExperimentOptions options;
    options.traceStride = 97; // ~6 of the 531 traces
    options.uopsPerTrace = 2'000;
    options.cacheUops = 2'000;
    options.adderOperandSamples = 200;
    options.profilingTraces = 20;
    options.jobs = jobs;
    return options;
}

TEST(JobsDeterminism, RegFileExperiment)
{
    const WorkloadSet workload;
    const auto serial =
        runRegFileExperiment(workload, false, tinyOptions(1));
    const auto parallel =
        runRegFileExperiment(workload, false, tinyOptions(8));

    EXPECT_EQ(serial.baselineBias, parallel.baselineBias);
    EXPECT_EQ(serial.isvBias, parallel.isvBias);
    EXPECT_EQ(serial.baselineWorst, parallel.baselineWorst);
    EXPECT_EQ(serial.isvWorst, parallel.isvWorst);
    EXPECT_EQ(serial.freeFraction, parallel.freeFraction);
    EXPECT_EQ(serial.isvStats.updatesApplied,
              parallel.isvStats.updatesApplied);
    EXPECT_EQ(serial.isvStats.updatesDiscarded,
              parallel.isvStats.updatesDiscarded);
    EXPECT_EQ(serial.isvStats.updatesSkipped,
              parallel.isvStats.updatesSkipped);
}

TEST(JobsDeterminism, SchedulerExperiment)
{
    const WorkloadSet workload;
    const auto serial =
        runSchedulerExperiment(workload, tinyOptions(1));
    const auto parallel =
        runSchedulerExperiment(workload, tinyOptions(8));

    EXPECT_EQ(serial.baselineBias, parallel.baselineBias);
    EXPECT_EQ(serial.protectedBias, parallel.protectedBias);
    EXPECT_EQ(serial.baselineWorstFig8,
              parallel.baselineWorstFig8);
    EXPECT_EQ(serial.protectedWorstFig8,
              parallel.protectedWorstFig8);
    EXPECT_EQ(serial.occupancy, parallel.occupancy);
    EXPECT_EQ(serial.guardband, parallel.guardband);
}

TEST(JobsDeterminism, PerfLossAndCombinedCpi)
{
    const WorkloadSet workload;
    const std::vector<unsigned> traces = workload.strided(97);
    for (unsigned jobs : {2u, 8u}) {
        const PerfLossStats serial = measurePerfLoss(
            workload, traces, 2'000, CacheConfig(),
            CacheConfig::tlb(128, 8), MechanismKind::LineFixed50,
            true, MemTimingParams(), 0.05, 1);
        const PerfLossStats parallel = measurePerfLoss(
            workload, traces, 2'000, CacheConfig(),
            CacheConfig::tlb(128, 8), MechanismKind::LineFixed50,
            true, MemTimingParams(), 0.05, jobs);
        EXPECT_EQ(serial.meanLoss, parallel.meanLoss);
        EXPECT_EQ(serial.maxLoss, parallel.maxLoss);
        EXPECT_EQ(serial.meanInvertRatio,
                  parallel.meanInvertRatio);

        EXPECT_EQ(
            combinedNormalizedCpi(
                workload, traces, 2'000, CacheConfig(),
                CacheConfig::tlb(128, 8),
                MechanismKind::LineDynamic60, MemTimingParams(),
                0.05, 1),
            combinedNormalizedCpi(
                workload, traces, 2'000, CacheConfig(),
                CacheConfig::tlb(128, 8),
                MechanismKind::LineDynamic60, MemTimingParams(),
                0.05, jobs));
    }
}

TEST(JobsDeterminism, PersistentPoolMatchesPerCallPools)
{
    // The persistent worker pool must not change any statistic:
    // serial, per-call-pool parallel, and shared-pool parallel runs
    // of the same experiments are bit-identical.  This covers the
    // sliced BitBiasTracker and the packed-slot scheduler kernels
    // under merge.
    const WorkloadSet workload;
    ThreadPool pool(4);
    ExperimentOptions pooled = tinyOptions(4);
    pooled.pool = &pool;

    const auto rf_serial =
        runRegFileExperiment(workload, false, tinyOptions(1));
    const auto rf_pooled =
        runRegFileExperiment(workload, false, pooled);
    EXPECT_EQ(rf_serial.baselineBias, rf_pooled.baselineBias);
    EXPECT_EQ(rf_serial.isvBias, rf_pooled.isvBias);
    EXPECT_EQ(rf_serial.isvStats.updatesApplied,
              rf_pooled.isvStats.updatesApplied);

    const auto sched_serial =
        runSchedulerExperiment(workload, tinyOptions(1));
    const auto sched_pooled =
        runSchedulerExperiment(workload, pooled);
    EXPECT_EQ(sched_serial.baselineBias, sched_pooled.baselineBias);
    EXPECT_EQ(sched_serial.protectedBias,
              sched_pooled.protectedBias);
    EXPECT_EQ(sched_serial.occupancy, sched_pooled.occupancy);

    const std::vector<unsigned> traces = workload.strided(97);
    const PerfLossStats loss_serial = measurePerfLoss(
        workload, traces, 2'000, CacheConfig(),
        CacheConfig::tlb(128, 8), MechanismKind::LineFixed50, true,
        MemTimingParams(), 0.05, 1);
    const PerfLossStats loss_pooled = measurePerfLoss(
        workload, traces, 2'000, CacheConfig(),
        CacheConfig::tlb(128, 8), MechanismKind::LineFixed50, true,
        MemTimingParams(), 0.05, 4, &pool);
    EXPECT_EQ(loss_serial.meanLoss, loss_pooled.meanLoss);
    EXPECT_EQ(loss_serial.meanInvertRatio,
              loss_pooled.meanInvertRatio);
}

TEST(JobsDeterminism, SchedulerProfile)
{
    const WorkloadSet workload;
    const std::vector<unsigned> traces = {0, 50, 200, 400};
    const auto serial = profileScheduler(
        workload, traces, 1'000, SchedulerConfig(),
        SchedReplayConfig(), 1);
    const auto parallel = profileScheduler(
        workload, traces, 1'000, SchedulerConfig(),
        SchedReplayConfig(), 4);
    ASSERT_EQ(serial.bits.size(), parallel.bits.size());
    for (std::size_t b = 0; b < serial.bits.size(); ++b) {
        EXPECT_EQ(serial.bits[b].occupancy,
                  parallel.bits[b].occupancy);
        EXPECT_EQ(serial.bits[b].bias0Busy,
                  parallel.bits[b].bias0Busy);
    }
    EXPECT_EQ(serial.slotOccupancy, parallel.slotOccupancy);
}

TEST(JobsDeterminism, PipelineSurvey)
{
    const WorkloadSet workload;
    const auto serial =
        runPipelineSurvey(workload, tinyOptions(1));
    const auto parallel =
        runPipelineSurvey(workload, tinyOptions(4));
    EXPECT_EQ(serial.cpi, parallel.cpi);
    EXPECT_EQ(serial.schedOccupancy, parallel.schedOccupancy);
    for (unsigned a = 0; a < 4; ++a)
        EXPECT_EQ(serial.adderUtil[a], parallel.adderUtil[a]);
    for (unsigned m = 0; m < 3; ++m)
        EXPECT_EQ(serial.mruHitFraction[m],
                  parallel.mruHitFraction[m]);
}

// -------------------------------------------------------- registry

TEST(Registry, BuiltinCatalogRegistersOnce)
{
    registerBuiltinExperiments();
    registerBuiltinExperiments(); // idempotent
    const auto &experiments =
        ExperimentRegistry::instance().experiments();
    EXPECT_EQ(experiments.size(), 13u);
    EXPECT_NE(ExperimentRegistry::instance().find("fig5"),
              nullptr);
    EXPECT_NE(ExperimentRegistry::instance().find("table4"),
              nullptr);
    EXPECT_NE(ExperimentRegistry::instance().find("attack"),
              nullptr);
    EXPECT_NE(ExperimentRegistry::instance().find("attack-search"),
              nullptr);
    EXPECT_EQ(ExperimentRegistry::instance().find("nope"),
              nullptr);
}

TEST(Registry, DuplicateNameThrows)
{
    registerBuiltinExperiments();
    EXPECT_THROW(ExperimentRegistry::instance().add(
                     {"fig5", "", "", nullptr}),
                 std::logic_error);
}

TEST(Registry, RunsAnExperimentThroughTheContext)
{
    registerBuiltinExperiments();
    const Experiment *fig3 =
        ExperimentRegistry::instance().find("fig3");
    ASSERT_NE(fig3, nullptr);
    const WorkloadSet workload;
    std::ostringstream out;
    fig3->run({workload, tinyOptions(2), out});
    EXPECT_NE(out.str().find("technique decision surface"),
              std::string::npos);
    EXPECT_NE(out.str().find("ALL1"), std::string::npos);
}

} // namespace
} // namespace penelope
