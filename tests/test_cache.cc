/**
 * @file
 * Tests for the cache model: lookup/replacement semantics, MRU
 * accounting, inversion invariants for every mechanism, the dynamic
 * test machinery and the timing model.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/inversion.hh"
#include "cache/timing.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024; // 16 sets x 4 ways
    cfg.ways = 4;
    cfg.writePortFreeProb = 1.0;
    return cfg;
}

// ----------------------------------------------------------- Basic

TEST(Cache, Geometry)
{
    Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.numWays(), 4u);
    EXPECT_EQ(c.numLines(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false, 1).hit);
    EXPECT_TRUE(c.access(0x1000, false, 2).hit);
    EXPECT_TRUE(c.access(0x1020, false, 3).hit); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctLinesDistinctEntries)
{
    Cache c(smallCache());
    c.access(0x0, false, 1);
    c.access(0x40, false, 2);
    EXPECT_TRUE(c.access(0x0, false, 3).hit);
    EXPECT_TRUE(c.access(0x40, false, 4).hit);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Fill one set (stride = numSets * lineBytes = 1024).
    for (int i = 0; i < 4; ++i)
        c.access(i * 1024, false, i + 1);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0, false, 10);
    // Allocate a 5th line: victim must be line 1.
    c.access(4 * 1024, false, 11);
    EXPECT_TRUE(c.access(0, false, 12).hit);
    EXPECT_FALSE(c.access(1 * 1024, false, 13).hit);
}

TEST(Cache, MruPositionTracking)
{
    Cache c(smallCache());
    c.access(0, false, 1);
    c.access(1024, false, 2);
    // Line 0 is now at position 1; hit it.
    const AccessResult r = c.access(0, false, 3);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.mruPosition, 1u);
    // Immediately re-hit: now MRU.
    EXPECT_EQ(c.access(0, false, 4).mruPosition, 0u);
    EXPECT_EQ(c.mruHitPositions().count(1), 1u);
}

TEST(Cache, MissRate)
{
    Cache c(smallCache());
    c.access(0, false, 1);
    c.access(0, false, 2);
    c.access(64, false, 3);
    c.access(64, false, 4);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, TlbConfigGeometry)
{
    const CacheConfig tlb = CacheConfig::tlb(128, 8);
    EXPECT_EQ(tlb.numSets(), 16u);
    EXPECT_EQ(tlb.numLines(), 128u);
    EXPECT_EQ(tlb.lineBytes, 4096u);
    Cache c(tlb);
    EXPECT_FALSE(c.access(0x1234, false, 1).hit);
    EXPECT_TRUE(c.access(0x1ffc, false, 2).hit); // same page
    EXPECT_FALSE(c.access(0x2000, false, 3).hit);
}

TEST(Cache, RandomReplacementStillCorrect)
{
    CacheConfig cfg = smallCache();
    cfg.replacement = ReplacementPolicy::Random;
    Cache c(cfg);
    for (int i = 0; i < 100; ++i)
        c.access(i * 1024, false, i + 1);
    // All 100 lines mapped to set 0; only 4 can be resident.
    unsigned resident = 0;
    for (int i = 0; i < 100; ++i)
        resident += c.access(i * 1024, false, 200 + i).hit;
    EXPECT_LE(resident, 4u);
}

// ------------------------------------------------------- Inversion

TEST(Inversion, InvertLineInvariants)
{
    Cache c(smallCache());
    c.access(0, false, 1);
    EXPECT_TRUE(c.lineValid(0, 0));
    EXPECT_TRUE(c.invertLine(0, 0, 2));
    EXPECT_FALSE(c.lineValid(0, 0));
    EXPECT_TRUE(c.lineInverted(0, 0));
    EXPECT_EQ(c.invertedCount(), 1u);
    // Double inversion is rejected.
    EXPECT_FALSE(c.invertLine(0, 0, 3));
    EXPECT_EQ(c.invertedCount(), 1u);
}

TEST(Inversion, InvertedLineMissesAndIsConsumed)
{
    Cache c(smallCache());
    c.access(0, false, 1);
    c.invertLine(0, 0, 2);
    const AccessResult miss = c.access(0, false, 3);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.consumedInvertedLine);
    EXPECT_EQ(c.invertedCount(), 0u);
}

TEST(Inversion, InvertPrefersDeadLines)
{
    Cache c(smallCache());
    c.access(0, false, 1); // one valid line in set 0
    // Set has 3 plain-invalid ways: inversion must take one of
    // those, keeping the valid line resident.
    EXPECT_TRUE(c.invertLruLineOfSet(0, 2));
    EXPECT_TRUE(c.access(0, false, 3).hit);
    EXPECT_EQ(c.invertedCount(), 1u);
}

TEST(Inversion, InvertFallsBackToLruValid)
{
    Cache c(smallCache());
    for (int w = 0; w < 4; ++w)
        c.access(w * 1024, false, w + 1);
    // Set 0 fully valid; LRU is line 0 (oldest).
    EXPECT_TRUE(c.invertLruLineOfSet(0, 10));
    EXPECT_FALSE(c.access(0, false, 11).hit);
}

TEST(Inversion, LineFixedReachesThreshold)
{
    Cache c(smallCache());
    c.setPolicy(std::make_unique<LineFixedInversion>(0.5));
    WorkloadSet w;
    TraceGenerator gen = w.generator(5);
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        ++now;
        c.tick(now);
        const Uop uop = gen.next();
        if (isMemory(uop.cls))
            c.access(uop.addr, uop.cls == UopClass::Store, now);
    }
    EXPECT_NEAR(c.invertRatio(), 0.5, 0.05);
    EXPECT_EQ(c.invertedCount(),
              static_cast<LineFixedInversion *>(c.policy())
                  ->threshold());
}

TEST(Inversion, SetFixedHalvesCapacity)
{
    Cache c(smallCache());
    c.setPolicy(std::make_unique<SetFixedInversion>(0.5));
    // Inverted ratio should be 0.5 immediately (8 of 16 sets).
    EXPECT_NEAR(c.invertRatio(), 0.5, 0.01);
    // 64 distinct lines exceed the 32-line effective capacity.
    for (int i = 0; i < 64; ++i)
        c.access(i * 64, false, i + 1);
    unsigned hits = 0;
    for (int i = 0; i < 64; ++i)
        hits += c.access(i * 64, false, 100 + i).hit;
    EXPECT_LE(hits, 32u);
}

TEST(Inversion, WayFixedHalvesAssociativity)
{
    Cache c(smallCache());
    c.setPolicy(std::make_unique<WayFixedInversion>(0.5));
    EXPECT_NEAR(c.invertRatio(), 0.5, 0.01);
    // 4 lines in one set, only 2 usable ways.
    for (int i = 0; i < 4; ++i)
        c.access(i * 1024, false, i + 1);
    unsigned hits = 0;
    for (int i = 0; i < 4; ++i)
        hits += c.access(i * 1024, false, 10 + i).hit;
    EXPECT_LE(hits, 2u);
}

TEST(Inversion, SetRotationMovesWindow)
{
    Cache c(smallCache());
    c.setPolicy(std::make_unique<SetFixedInversion>(0.5, 100));
    c.access(0, false, 1);
    // Force a rotation.
    c.tick(200);
    // The window moved: newly unusable sets are inverted right
    // away, newly usable ones drain as misses consume them, so the
    // ratio sits at or slightly above 50%.
    EXPECT_GE(c.invertRatio(), 0.5);
    EXPECT_LE(c.invertRatio(), 0.60);
}

TEST(Inversion, ShadowMarking)
{
    Cache c(smallCache());
    c.access(0, false, 1);
    EXPECT_TRUE(c.shadowMarkLruLineOfSet(0));
    EXPECT_EQ(c.shadowCount(), 1u);
    c.clearShadows();
    EXPECT_EQ(c.shadowCount(), 0u);
}

TEST(Inversion, ShadowHitCountsExtraMiss)
{
    Cache c(smallCache());
    DynamicInversionParams p;
    p.warmupCycles = 10;
    p.testCycles = 100000;
    p.periodCycles = 1000000;
    p.extraMissThreshold = 0.0; // any extra miss deactivates
    auto policy = std::make_unique<LineDynamicInversion>(p);
    LineDynamicInversion *dyn = policy.get();
    c.setPolicy(std::move(policy));
    // Fill the whole cache with valid lines so shadow marks must
    // land on live data, then keep hitting them during the test
    // phase: some hits must be flagged as induced extra misses.
    Cycle now = 1;
    for (int i = 0; i < 64; ++i)
        c.access(i * 64, false, now++);
    bool shadow_hit = false;
    for (int round = 0; round < 200 && !shadow_hit; ++round) {
        c.tick(now);
        for (int i = 0; i < 64 && !shadow_hit; ++i) {
            shadow_hit =
                c.access(i * 64, false, now).shadowExtraMiss;
        }
        ++now;
    }
    EXPECT_TRUE(shadow_hit);
    EXPECT_TRUE(dyn != nullptr);
}

TEST(Inversion, DynamicDeactivatesForCacheHungryProgram)
{
    // A program hammering every line of the cache should fail the
    // extra-miss test and keep the mechanism off.
    CacheConfig cfg = smallCache();
    Cache c(cfg);
    DynamicInversionParams p;
    p.warmupCycles = 500;
    p.testCycles = 500;
    p.periodCycles = 20000;
    p.extraMissThreshold = 0.01;
    c.setPolicy(std::make_unique<LineDynamicInversion>(p));
    Cycle now = 0;
    Rng rng(3);
    for (int i = 0; i < 40000; ++i) {
        ++now;
        c.tick(now);
        // Uniform sweep over exactly the cache capacity.
        c.access((i % 64) * 64, false, now);
    }
    EXPECT_LT(c.averageInvertRatio(now), 0.15);
}

TEST(Inversion, DynamicActivatesForSmallFootprint)
{
    CacheConfig cfg = smallCache();
    Cache c(cfg);
    DynamicInversionParams p;
    p.warmupCycles = 500;
    p.testCycles = 500;
    p.periodCycles = 50000;
    p.extraMissThreshold = 0.02;
    auto policy = std::make_unique<LineDynamicInversion>(p);
    LineDynamicInversion *dyn = policy.get();
    c.setPolicy(std::move(policy));
    Cycle now = 0;
    for (int i = 0; i < 40000; ++i) {
        ++now;
        c.tick(now);
        // Footprint of 8 lines: trivially fits half the cache.
        c.access((i % 8) * 64, false, now);
    }
    EXPECT_GT(dyn->activeFraction(), 0.9);
    EXPECT_GT(c.invertRatio(), 0.4);
}

TEST(Inversion, DataBiasBalancedByInversion)
{
    // The stored-image bias moves towards 50% when lines spend half
    // their time inverted.
    CacheConfig cfg = smallCache();
    Cache c(cfg);
    Cycle now = 0;
    Rng rng(9);
    for (int i = 0; i < 20000; ++i) {
        ++now;
        // Biased data: mostly zero words.
        const Word data = rng.nextBool(0.9) ? 0 : ~Word(0);
        c.access((i % 64) * 64, true, now, data);
        if ((i % 2) == 0) {
            const unsigned set =
                static_cast<unsigned>(rng.nextInt(c.numSets()));
            c.invertLruLineOfSet(set, now);
        }
    }
    const BitBiasTracker &bias = c.finalizeDataBias(now);
    // Unprotected, the 90%-zero stream leaves cells near 90%
    // stress; inversion pulls the worst cell well below that.
    EXPECT_LT(bias.maxWorstCaseStress(), 0.84);
}

TEST(Inversion, MechanismNames)
{
    EXPECT_EQ(SetFixedInversion(0.5).name(), "SetFixed50%");
    EXPECT_EQ(LineFixedInversion(0.5).name(), "LineFixed50%");
    EXPECT_EQ(WayFixedInversion(0.5).name(), "WayFixed50%");
    EXPECT_EQ(LineDynamicInversion().name(), "LineDynamic60%");
}

TEST(Inversion, PaperThresholdTables)
{
    EXPECT_DOUBLE_EQ(dl0ExtraMissThreshold(32 * 1024), 0.02);
    EXPECT_DOUBLE_EQ(dl0ExtraMissThreshold(16 * 1024), 0.03);
    EXPECT_DOUBLE_EQ(dl0ExtraMissThreshold(8 * 1024), 0.04);
    EXPECT_DOUBLE_EQ(dtlbExtraMissThreshold(128), 0.005);
    EXPECT_DOUBLE_EQ(dtlbExtraMissThreshold(64), 0.01);
    EXPECT_DOUBLE_EQ(dtlbExtraMissThreshold(32), 0.02);
}

// ---------------------------------------------------------- Timing

TEST(Timing, BaselineCyclesScaleWithUops)
{
    WorkloadSet w;
    TraceGenerator gen = w.generator(0);
    MemTimingSim sim(CacheConfig(), CacheConfig::tlb(128, 8),
                     MemTimingParams(), MechanismKind::None,
                     MechanismKind::None);
    const MemSimResult r = sim.run(gen, 10000);
    EXPECT_EQ(r.uops, 10000u);
    EXPECT_GT(r.cycles, 10000 * 0.6);
    EXPECT_GT(r.memOps, 1000u);
    EXPECT_EQ(r.dl0Hits + r.dl0Misses, r.memOps);
}

TEST(Timing, MissesCostCycles)
{
    WorkloadSet w;
    MemTimingParams cheap;
    cheap.dl0MissPenalty = 0;
    cheap.dtlbMissPenalty = 0;
    MemTimingParams costly;

    TraceGenerator g1 = w.generator(8);
    MemTimingSim s1(CacheConfig(), CacheConfig::tlb(128, 8), cheap,
                    MechanismKind::None, MechanismKind::None);
    TraceGenerator g2 = w.generator(8);
    MemTimingSim s2(CacheConfig(), CacheConfig::tlb(128, 8), costly,
                    MechanismKind::None, MechanismKind::None);
    const double c1 = s1.run(g1, 10000).cycles;
    const double c2 = s2.run(g2, 10000).cycles;
    EXPECT_GT(c2, c1);
}

TEST(Timing, MechanismNamesExhaustive)
{
    EXPECT_STREQ(mechanismName(MechanismKind::None), "Baseline");
    EXPECT_STREQ(mechanismName(MechanismKind::SetFixed50),
                 "SetFixed50%");
    EXPECT_STREQ(mechanismName(MechanismKind::WayFixed50),
                 "WayFixed50%");
    EXPECT_STREQ(mechanismName(MechanismKind::LineFixed50),
                 "LineFixed50%");
    EXPECT_STREQ(mechanismName(MechanismKind::LineDynamic60),
                 "LineDynamic60%");
}

TEST(Timing, PerfLossNonNegativeOnAverage)
{
    WorkloadSet w;
    const auto traces = w.strided(120);
    const PerfLossStats stats = measurePerfLoss(
        w, traces, 15000, CacheConfig(), CacheConfig::tlb(128, 8),
        MechanismKind::LineFixed50, true);
    EXPECT_GT(stats.traces, 0u);
    EXPECT_GE(stats.meanLoss, 0.0);
    EXPECT_GT(stats.meanInvertRatio, 0.3);
}

TEST(Timing, DynamicLosesLessThanFixed)
{
    // The headline Table-3 ordering.
    WorkloadSet w;
    const auto traces = w.strided(60);
    const PerfLossStats fixed = measurePerfLoss(
        w, traces, 20000, CacheConfig(), CacheConfig::tlb(128, 8),
        MechanismKind::LineFixed50, true);
    const PerfLossStats dynamic = measurePerfLoss(
        w, traces, 20000, CacheConfig(), CacheConfig::tlb(128, 8),
        MechanismKind::LineDynamic60, true);
    EXPECT_LT(dynamic.meanLoss, fixed.meanLoss);
}


/** Parameterised geometry sweep: core invariants must hold for
 *  every (size, ways, replacement, mechanism) combination. */
class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, int, int>>
{};

TEST_P(CacheGeometry, InvariantsHold)
{
    CacheConfig cfg;
    cfg.sizeBytes = std::get<0>(GetParam()) * 1024;
    cfg.ways = std::get<1>(GetParam());
    cfg.replacement =
        static_cast<ReplacementPolicy>(std::get<2>(GetParam()));
    const auto mech =
        static_cast<MechanismKind>(std::get<3>(GetParam()));
    Cache c(cfg);
    c.setPolicy(makeMechanism(mech, cfg, false, 0.01));

    Rng rng(cfg.sizeBytes + cfg.ways);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        ++now;
        c.tick(now);
        const Addr addr =
            rng.nextInt(4 * cfg.sizeBytes / 64) * 64;
        c.access(addr, rng.nextBool(0.3), now, rng());

        // Invariants checked continuously:
        ASSERT_LE(c.invertedCount(), c.numLines());
        ASSERT_GE(c.invertRatio(), 0.0);
        ASSERT_LE(c.invertRatio(), 1.0);
    }
    // Accounting identities.
    EXPECT_EQ(c.hits() + c.misses(), 20000u);
    // An inverted line is never valid; recount from scratch.
    unsigned inverted = 0;
    for (unsigned s = 0; s < c.numSets(); ++s) {
        for (unsigned w = 0; w < c.numWays(); ++w) {
            if (c.lineInverted(s, w)) {
                ++inverted;
                EXPECT_FALSE(c.lineValid(s, w));
            }
        }
    }
    EXPECT_EQ(inverted, c.invertedCount());
    const double avg = c.averageInvertRatio(now);
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 1.0);
    // Hitting the cache again must still work after all churn.
    const Addr probe = 0x40;
    c.access(probe, false, ++now);
    EXPECT_TRUE(c.access(probe, false, ++now).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Combine(
        ::testing::Values(4u, 8u, 32u),     // KB
        ::testing::Values(2u, 4u, 8u),      // ways
        ::testing::Values(0, 1, 2),         // LRU/pLRU/random
        ::testing::Values(0, 1, 2, 3, 4))); // mechanisms

} // namespace
} // namespace penelope

