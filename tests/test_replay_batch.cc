/**
 * @file
 * Batched-vs-scalar replay identity suites.
 *
 * The replay drivers accumulate slot/register/line images into
 * 64-record batches and fold them with one transposed drain; the
 * scalar path charges the accumulators on every event.  Both paths
 * add the identical modular integers in a different order, so every
 * derived statistic -- and the RNG draw stream, since the trackers
 * feed no mid-run decision -- must match bit for bit.  These suites
 * assert exactly that over random workload traces, with protection
 * and ISV on and off, across partial final batches, mid-run reader
 * folds, mid-run mode toggles, and snapshot merge interleavings.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "regfile/driver.hh"
#include "regfile/regfile.hh"
#include "scheduler/driver.hh"
#include "scheduler/profile.hh"
#include "scheduler/scheduler.hh"
#include "trace/generator.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ------------------------------------------------------ comparators

/** Exact per-bit integer equality of two bias trackers. */
void
expectTrackersEqual(const BitBiasTracker &a, const BitBiasTracker &b)
{
    ASSERT_EQ(a.width(), b.width());
    EXPECT_EQ(a.totalTime(), b.totalTime());
    for (unsigned bit = 0; bit < a.width(); ++bit)
        EXPECT_EQ(a.zeroTime(bit), b.zeroTime(bit)) << "bit " << bit;
}

void
expectStressEqual(const SchedulerStress &a, const SchedulerStress &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.busyIntegral, b.busyIntegral);
    ASSERT_EQ(a.totalBias.size(), b.totalBias.size());
    ASSERT_EQ(a.fieldUseTime, b.fieldUseTime);
    for (std::size_t f = 0; f < a.totalBias.size(); ++f) {
        expectTrackersEqual(a.totalBias[f], b.totalBias[f]);
        expectTrackersEqual(a.busyBias[f], b.busyBias[f]);
    }
}

void
expectResultsEqual(const SchedReplayResult &a,
                   const SchedReplayResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.allocated, b.allocated);
    EXPECT_EQ(a.released, b.released);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
    EXPECT_EQ(a.occupancy, b.occupancy);
}

// ------------------------------------------------------- scheduler

/** Replay @p num_uops of workload trace @p trace against a fresh
 *  scheduler in the requested accounting mode and snapshot it. */
SchedulerStress
runScheduler(bool batched, unsigned trace, std::size_t num_uops,
             bool protect, SchedReplayResult *result = nullptr)
{
    WorkloadSet w;
    Scheduler sched{SchedulerConfig{}};
    sched.setBatchedAccounting(batched);
    if (protect) {
        const SchedulerProfile profile =
            profileScheduler(w, {trace}, 4000);
        sched.configureProtection(decideProtection(profile.bits));
        sched.enableProtection(true);
    }
    SchedulerReplay replay(sched, SchedReplayConfig{});
    TraceGenerator gen = w.generator(trace);
    const SchedReplayResult r = replay.run(gen, num_uops);
    if (result)
        *result = r;
    return sched.snapshotStress(r.cycles);
}

TEST(SchedulerReplayBatch, RandomTracesMatchScalar)
{
    // Uop counts straddle batch boundaries (partial final batches,
    // exactly-full batches, multi-batch runs).
    const std::size_t counts[] = {63, 64, 777, 4096, 5001};
    unsigned trace = 0;
    for (const std::size_t uops : counts) {
        SchedReplayResult rb, rs;
        const SchedulerStress batched =
            runScheduler(true, trace, uops, false, &rb);
        const SchedulerStress scalar =
            runScheduler(false, trace, uops, false, &rs);
        expectResultsEqual(rb, rs);
        expectStressEqual(batched, scalar);
        trace = (trace + 1) % 4;
    }
}

TEST(SchedulerReplayBatch, ProtectionAndIsvOnMatchScalar)
{
    // Protection exercises the repair/ISV write paths, whose
    // decision stream (and RNG draws) must be batching-independent.
    SchedReplayResult rb, rs;
    const SchedulerStress batched =
        runScheduler(true, 2, 3000, true, &rb);
    const SchedulerStress scalar =
        runScheduler(false, 2, 3000, true, &rs);
    expectResultsEqual(rb, rs);
    expectStressEqual(batched, scalar);
}

TEST(SchedulerReplayBatch, MidRunReadsFoldPendingBatch)
{
    // Mid-run statistic reads force a fold of the pending batch
    // (including deferred releases); the values read and the final
    // state must both match the scalar path.
    WorkloadSet w;
    Scheduler batched{SchedulerConfig{}};
    Scheduler scalar{SchedulerConfig{}};
    scalar.setBatchedAccounting(false);
    SchedulerReplay rb(batched, SchedReplayConfig{});
    SchedulerReplay rs(scalar, SchedReplayConfig{});
    TraceGenerator gb = w.generator(1);
    TraceGenerator gs = w.generator(1);

    for (int leg = 0; leg < 3; ++leg) {
        const SchedReplayResult b = rb.run(gb, 997);
        const SchedReplayResult s = rs.run(gs, 997);
        expectResultsEqual(b, s);
        EXPECT_EQ(batched.occupancy(b.cycles),
                  scalar.occupancy(s.cycles));
        EXPECT_EQ(batched.fieldOccupancy(FieldId::Src1Data, b.cycles),
                  scalar.fieldOccupancy(FieldId::Src1Data, s.cycles));
        EXPECT_EQ(batched.biasVector(b.cycles),
                  scalar.biasVector(s.cycles));
    }
    expectStressEqual(batched.snapshotStress(rb.run(gb, 100).cycles),
                      scalar.snapshotStress(rs.run(gs, 100).cycles));
}

TEST(SchedulerReplayBatch, MidRunToggleDrainsAndMatches)
{
    // Flipping the accounting mode mid-run drains the pending batch
    // and must leave no trace in the statistics.
    WorkloadSet w;
    Scheduler toggled{SchedulerConfig{}};
    Scheduler scalar{SchedulerConfig{}};
    scalar.setBatchedAccounting(false);
    SchedulerReplay rt(toggled, SchedReplayConfig{});
    SchedulerReplay rs(scalar, SchedReplayConfig{});
    TraceGenerator gt = w.generator(3);
    TraceGenerator gs = w.generator(3);

    Cycle t_end = 0, s_end = 0;
    bool mode = true;
    for (int leg = 0; leg < 4; ++leg) {
        toggled.setBatchedAccounting(mode);
        mode = !mode;
        t_end = rt.run(gt, 511).cycles;
        s_end = rs.run(gs, 511).cycles;
    }
    expectStressEqual(toggled.snapshotStress(t_end),
                      scalar.snapshotStress(s_end));
}

TEST(SchedulerReplayBatch, MergeOrderInterleavings)
{
    // Snapshots from batched and scalar runs of different traces
    // must merge to the same aggregate in either interleaving
    // (mixed-mode merging is what the sharded experiment engine
    // does when workers disagree only in accounting mode).
    const SchedulerStress a_b = runScheduler(true, 0, 1500, false);
    const SchedulerStress a_s = runScheduler(false, 0, 1500, false);
    const SchedulerStress b_b = runScheduler(true, 1, 2111, false);
    const SchedulerStress b_s = runScheduler(false, 1, 2111, false);

    SchedulerStress m1 = a_b;
    m1.merge(b_s);
    SchedulerStress m2 = a_s;
    m2.merge(b_b);
    expectStressEqual(m1, m2);

    SchedulerStress m3 = b_b;
    m3.merge(a_b);
    // merge() sums commutative integers, so even the reversed
    // interleaving agrees.
    expectStressEqual(m3, m1);
}

// -------------------------------------------------------- regfile

RegFileConfig
fpConfig()
{
    RegFileConfig cfg;
    cfg.name = "FP-RF";
    cfg.numEntries = 64;
    cfg.width = 80; // > 64: exercises the hi-word batch column
    return cfg;
}

/** Replay against a register file in the requested mode; returns
 *  the finalized tracker by value alongside the stats. */
struct RegRunOut
{
    std::vector<std::uint64_t> zeroTimes;
    std::uint64_t totalTime = 0;
    IsvStats isv;
    double occupancy = 0.0;
};

RegRunOut
runRegFile(bool batched, const RegFileConfig &cfg,
           const RegReplayConfig &rcfg, bool isv, unsigned trace,
           std::size_t num_uops)
{
    WorkloadSet w;
    RegisterFile rf(cfg);
    rf.setBatchedAccounting(batched);
    rf.enableIsv(isv);
    RegFileReplay replay(rf, rcfg);
    TraceGenerator gen = w.generator(trace);
    const RegReplayResult r = replay.run(gen, num_uops);
    const BitBiasTracker &bias = rf.finalizeBias(r.cycles);
    RegRunOut out;
    for (unsigned bit = 0; bit < bias.width(); ++bit)
        out.zeroTimes.push_back(bias.zeroTime(bit));
    out.totalTime = bias.totalTime();
    out.isv = rf.isvStats();
    out.occupancy = r.occupancy;
    return out;
}

void
expectRegRunsEqual(const RegRunOut &a, const RegRunOut &b)
{
    EXPECT_EQ(a.zeroTimes, b.zeroTimes);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.isv.updatesApplied, b.isv.updatesApplied);
    EXPECT_EQ(a.isv.updatesDiscarded, b.isv.updatesDiscarded);
    EXPECT_EQ(a.isv.updatesSkipped, b.isv.updatesSkipped);
    EXPECT_EQ(a.occupancy, b.occupancy);
}

TEST(RegFileReplayBatch, IntTracesMatchScalar)
{
    // Partial final batches and multi-batch runs, ISV off and on.
    const std::size_t counts[] = {100, 1000, 4567};
    for (const std::size_t uops : counts) {
        for (const bool isv : {false, true}) {
            const RegRunOut batched =
                runRegFile(true, RegFileConfig(), RegReplayConfig{},
                           isv, 1, uops);
            const RegRunOut scalar =
                runRegFile(false, RegFileConfig(), RegReplayConfig{},
                           isv, 1, uops);
            expectRegRunsEqual(batched, scalar);
        }
    }
}

TEST(RegFileReplayBatch, FpWideTracesMatchScalar)
{
    RegReplayConfig rcfg;
    rcfg.fp = true;
    rcfg.portFreeProb = 0.86;
    for (const bool isv : {false, true}) {
        const RegRunOut batched =
            runRegFile(true, fpConfig(), rcfg, isv, 2, 3000);
        const RegRunOut scalar =
            runRegFile(false, fpConfig(), rcfg, isv, 2, 3000);
        expectRegRunsEqual(batched, scalar);
    }
}

TEST(RegFileReplayBatch, MidRunToggleDrains)
{
    WorkloadSet w;
    RegisterFile toggled{RegFileConfig()};
    RegisterFile scalar{RegFileConfig()};
    scalar.setBatchedAccounting(false);
    toggled.enableIsv(true);
    scalar.enableIsv(true);
    RegFileReplay rt(toggled, RegReplayConfig{});
    RegFileReplay rs(scalar, RegReplayConfig{});
    TraceGenerator gt = w.generator(0);
    TraceGenerator gs = w.generator(0);

    Cycle t_end = 0, s_end = 0;
    bool mode = true;
    for (int leg = 0; leg < 4; ++leg) {
        toggled.setBatchedAccounting(mode);
        mode = !mode;
        t_end = rt.run(gt, 801).cycles;
        s_end = rs.run(gs, 801).cycles;
    }
    const BitBiasTracker &tb = toggled.finalizeBias(t_end);
    const BitBiasTracker &sb = scalar.finalizeBias(s_end);
    expectTrackersEqual(tb, sb);
}

// ---------------------------------------------------------- cache

TEST(CacheReplayBatch, AccessStreamsMatchScalar)
{
    // Random access streams over a small cache, with enough misses
    // to rotate line images (dt > 1 residencies throughout) and a
    // final partial batch.
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024;
    cfg.ways = 4;
    Cache batched(cfg);
    Cache scalar(cfg);
    scalar.setBatchedAccounting(false);

    Rng rng(0xcac4e);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            static_cast<Addr>(rng.nextInt(1 << 14)) & ~Addr(7);
        const bool is_write = rng.nextBool(0.3);
        const Word data = rng();
        now += 1 + rng.nextInt(3);
        batched.access(addr, is_write, now, data);
        scalar.access(addr, is_write, now, data);
    }
    EXPECT_EQ(batched.hits(), scalar.hits());
    EXPECT_EQ(batched.misses(), scalar.misses());
    expectTrackersEqual(batched.finalizeDataBias(now),
                        scalar.finalizeDataBias(now));
}

TEST(CacheReplayBatch, InvertedLinesMatchScalar)
{
    // Line inversions rewrite images mid-residence; the batched
    // accounting must charge the pre-inversion image identically.
    // Both caches consume one pre-recorded access stream, so their
    // inputs (and their internal victim-pick draws: same per-cache
    // seed, same call sequence) are identical.
    struct Access
    {
        Addr addr;
        bool write;
        Word data;
        Cycle at;
    };
    std::vector<Access> stream;
    Rng gen(0x90ff);
    Cycle t = 0;
    for (int i = 0; i < 8000; ++i) {
        t += 1 + gen.nextInt(2);
        stream.push_back({static_cast<Addr>(gen.nextInt(1 << 13)) &
                              ~Addr(7),
                          gen.nextBool(0.25), gen(), t});
    }
    CacheConfig cfg;
    cfg.sizeBytes = 2 * 1024;
    cfg.ways = 2;
    Cache cb(cfg);
    Cache cs(cfg);
    cs.setBatchedAccounting(false);
    unsigned inversions = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Access &a = stream[i];
        cb.access(a.addr, a.write, a.at, a.data);
        cs.access(a.addr, a.write, a.at, a.data);
        if ((i & 255) == 255) {
            const unsigned set =
                static_cast<unsigned>(i / 256) % cb.numSets();
            const bool ib = cb.invertLruLineOfSet(set, a.at);
            const bool is = cs.invertLruLineOfSet(set, a.at);
            EXPECT_EQ(ib, is);
            inversions += ib ? 1u : 0u;
        }
    }
    EXPECT_GT(inversions, 0u);
    EXPECT_EQ(cb.hits(), cs.hits());
    EXPECT_EQ(cb.misses(), cs.misses());
    const Cycle end = stream.back().at;
    expectTrackersEqual(cb.finalizeDataBias(end),
                        cs.finalizeDataBias(end));
}

} // namespace
} // namespace penelope
