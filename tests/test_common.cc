/**
 * @file
 * Unit and property tests for the common library: RNG, statistics,
 * bit words, duty-cycle counters and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bitword.hh"
#include "common/duty.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace penelope {
namespace {

// ------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, NextIntRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextInt(17), 17u);
}

TEST(Rng, NextIntCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliMeanConverges)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, GeometricMean)
{
    Rng rng(23);
    RunningStats s;
    const double p = 0.125;
    for (int i = 0; i < 20000; ++i)
        s.add(static_cast<double>(rng.nextGeometric(p)));
    // Mean of failures-before-success = (1-p)/p = 7.
    EXPECT_NEAR(s.mean(), 7.0, 0.3);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(29);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng child = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == child())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(37);
    ZipfTable table(64, 1.0);
    std::vector<int> counts(64, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[table.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[1], counts[40]);
}

TEST(Zipf, AllRanksInRange)
{
    Rng rng(41);
    ZipfTable table(10, 0.8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(table.sample(rng), 10u);
}

// ----------------------------------------------------------- Stats

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    RunningStats a;
    RunningStats b;
    RunningStats all;
    Rng rng(43);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.nextGaussian() * 3 + 1;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(3.0);
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.05);
    h.add(0.15);
    h.add(0.95);
    h.add(2.0);  // clamped into last bin
    h.add(-1.0); // clamped into first bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binFraction(0), 0.4);
}

TEST(Histogram, Quantile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(CategoryCounter, FractionsSumToOne)
{
    CategoryCounter c(4);
    c.add(0, 10);
    c.add(1, 20);
    c.add(3, 70);
    double total = 0;
    for (std::size_t i = 0; i < c.categories(); ++i)
        total += c.fraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(c.fraction(3), 0.7);
}

// --------------------------------------------------------- BitWord

TEST(BitWord, ZeroConstruction)
{
    BitWord w(80);
    EXPECT_EQ(w.width(), 80u);
    EXPECT_EQ(w.popcount(), 0u);
    for (unsigned i = 0; i < 80; ++i)
        EXPECT_FALSE(w.bit(i));
}

TEST(BitWord, MasksToWidth)
{
    BitWord w(8, 0xfff);
    EXPECT_EQ(w.lo(), 0xffu);
    EXPECT_EQ(w.popcount(), 8u);
}

TEST(BitWord, HighBitsAccess)
{
    BitWord w(80, 0, 0x8001);
    EXPECT_TRUE(w.bit(64));
    EXPECT_TRUE(w.bit(79));
    EXPECT_FALSE(w.bit(70));
    EXPECT_FALSE(w.bit(0));
}

TEST(BitWord, SetBit)
{
    BitWord w(128);
    w.setBit(0, true);
    w.setBit(64, true);
    w.setBit(127, true);
    EXPECT_EQ(w.popcount(), 3u);
    w.setBit(64, false);
    EXPECT_EQ(w.popcount(), 2u);
    EXPECT_FALSE(w.bit(64));
}

TEST(BitWord, InvertedIsInvolution)
{
    Rng rng(47);
    for (unsigned width : {1u, 7u, 32u, 64u, 80u, 128u}) {
        BitWord w(width, rng(), rng());
        EXPECT_EQ(w.inverted().inverted(), w);
        EXPECT_EQ(w.popcount() + w.inverted().popcount(), width);
    }
}

TEST(BitWord, InvertedFlipsEveryBit)
{
    BitWord w(80, 0x123456789abcdefULL, 0x55);
    const BitWord inv = w.inverted();
    for (unsigned i = 0; i < 80; ++i)
        EXPECT_NE(w.bit(i), inv.bit(i));
}

TEST(BitWord, ToStringMsbFirst)
{
    BitWord w(4, 0b1010);
    EXPECT_EQ(w.toString(), "1010");
}

// ------------------------------------------------------------ Duty

TEST(DutyCycle, NeverObservedIsHalf)
{
    DutyCycleCounter c;
    EXPECT_DOUBLE_EQ(c.zeroProbability(), 0.5);
}

TEST(DutyCycle, ZeroProbability)
{
    DutyCycleCounter c;
    c.observe(false, 3);
    c.observe(true, 1);
    EXPECT_DOUBLE_EQ(c.zeroProbability(), 0.75);
    EXPECT_DOUBLE_EQ(c.oneProbability(), 0.25);
}

TEST(DutyCycle, WorstCaseStressFolds)
{
    DutyCycleCounter c;
    c.observe(true, 9);
    c.observe(false, 1);
    EXPECT_DOUBLE_EQ(c.zeroProbability(), 0.1);
    EXPECT_DOUBLE_EQ(c.worstCaseStress(), 0.9);
}

TEST(DutyCycle, Merge)
{
    DutyCycleCounter a;
    DutyCycleCounter b;
    a.observe(false, 10);
    b.observe(true, 10);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.zeroProbability(), 0.5);
    EXPECT_EQ(a.totalTime(), 20u);
}

TEST(BitBias, TracksPerBit)
{
    BitBiasTracker t(4);
    t.observe(Word(0b0011), 1);
    t.observe(Word(0b0001), 1);
    EXPECT_DOUBLE_EQ(t.zeroProbability(0), 0.0);
    EXPECT_DOUBLE_EQ(t.zeroProbability(1), 0.5);
    EXPECT_DOUBLE_EQ(t.zeroProbability(2), 1.0);
    EXPECT_DOUBLE_EQ(t.maxZeroProbability(), 1.0);
    EXPECT_DOUBLE_EQ(t.minZeroProbability(), 0.0);
    EXPECT_DOUBLE_EQ(t.maxWorstCaseStress(), 1.0);
}

TEST(BitBias, TimeWeighting)
{
    BitBiasTracker t(1);
    t.observe(Word(1), 3);
    t.observe(Word(0), 1);
    EXPECT_DOUBLE_EQ(t.zeroProbability(0), 0.25);
}

TEST(BitBias, WideValues)
{
    BitBiasTracker t(80);
    BitWord w(80);
    w.setBit(79, true);
    t.observe(w, 1);
    EXPECT_DOUBLE_EQ(t.zeroProbability(79), 0.0);
    EXPECT_DOUBLE_EQ(t.zeroProbability(0), 1.0);
}

TEST(BitBias, MergeAndReset)
{
    BitBiasTracker a(2);
    BitBiasTracker b(2);
    a.observe(Word(0b01), 1);
    b.observe(Word(0b10), 1);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.zeroProbability(0), 0.5);
    EXPECT_DOUBLE_EQ(a.zeroProbability(1), 0.5);
    a.reset();
    EXPECT_DOUBLE_EQ(a.zeroProbability(0), 0.5); // unobserved
    EXPECT_EQ(a.counter(0).totalTime(), 0u);
}

// ----------------------------------------------------------- Table

TEST(TextTable, RendersAllCells)
{
    TextTable t({"a", "bb"});
    t.addRow({"x", "y"});
    t.addSeparator();
    t.addRow({"long-cell", "z"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("long-cell"), std::string::npos);
    EXPECT_NE(out.find("z"), std::string::npos);
    EXPECT_EQ(t.rows(), 3u); // separator counts as a row record
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(TextTable::num(1.5, 2), "1.50");
    EXPECT_EQ(TextTable::count(42), "42");
}

TEST(CsvWriter, EscapesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(),
              "plain,\"with,comma\",\"with\"\"quote\"\n");
}

} // namespace
} // namespace penelope
