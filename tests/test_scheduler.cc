/**
 * @file
 * Tests for the scheduler: field layout (Table 2), the Figure-3
 * casuistic and K computation, repair techniques, the occupancy
 * driver and the profiling methodology.
 */

#include <gtest/gtest.h>

#include "scheduler/driver.hh"
#include "scheduler/fields.hh"
#include "scheduler/profile.hh"
#include "scheduler/scheduler.hh"
#include "scheduler/techniques.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

// ---------------------------------------------------------- Fields

TEST(Fields, TableTwoLayout)
{
    const FieldLayout &layout = fieldLayout();
    EXPECT_EQ(layout.count(), 18u);
    EXPECT_EQ(layout.totalBits(), 144u);
    EXPECT_EQ(layout.figure8Bits(), 132u);
    EXPECT_EQ(layout.spec(FieldId::Latency).width, 5u);
    EXPECT_EQ(layout.spec(FieldId::MobId).width, 6u);
    EXPECT_EQ(layout.spec(FieldId::Src1Data).width, 32u);
    EXPECT_EQ(layout.spec(FieldId::Imm).width, 16u);
    EXPECT_EQ(layout.spec(FieldId::Opcode).width, 12u);
    EXPECT_FALSE(layout.spec(FieldId::Opcode).inFigure8);
}

TEST(Fields, OffsetsAreContiguous)
{
    const FieldLayout &layout = fieldLayout();
    unsigned expected = 0;
    for (unsigned f = 0; f < layout.count(); ++f) {
        EXPECT_EQ(layout.spec(f).offset, expected);
        expected += layout.spec(f).width;
    }
    EXPECT_EQ(expected, layout.totalBits());
}

TEST(Fields, ValueExtraction)
{
    Uop uop;
    uop.cls = UopClass::IntAlu;
    uop.latency = 3;
    uop.port = 2;
    uop.flags = 0x18;
    uop.opcode = 0xabc;
    RenameTags tags;
    tags.dstTag = 77;
    EXPECT_EQ(fieldValue(FieldId::Latency, uop, tags).lo(), 3u);
    EXPECT_EQ(fieldValue(FieldId::Port, uop, tags).lo(), 4u);
    EXPECT_EQ(fieldValue(FieldId::Flags, uop, tags).lo(), 0x18u);
    EXPECT_EQ(fieldValue(FieldId::DstTag, uop, tags).lo(), 77u);
    EXPECT_EQ(fieldValue(FieldId::Opcode, uop, tags).lo(), 0xabcu);
    EXPECT_EQ(fieldValue(FieldId::Valid, uop, tags).lo(), 1u);
}

TEST(Fields, CaptureFieldsFollowReadiness)
{
    Uop uop;
    uop.cls = UopClass::IntAlu;
    uop.srcReg1 = 1;
    uop.srcReg2 = 2;
    RenameTags tags;
    tags.ready1 = true;  // read at issue, capture field free
    tags.ready2 = false; // captured later, field in use
    EXPECT_FALSE(fieldUsedByUop(FieldId::Src1Data, uop, tags));
    EXPECT_TRUE(fieldUsedByUop(FieldId::Src2Data, uop, tags));
    EXPECT_FALSE(fieldUsedByUop(FieldId::Imm, uop, tags));
    uop.hasImm = true;
    EXPECT_TRUE(fieldUsedByUop(FieldId::Imm, uop, tags));
    // Non-capture fields are always live while the slot is busy.
    EXPECT_TRUE(fieldUsedByUop(FieldId::Taken, uop, tags));
    EXPECT_TRUE(fieldUsedByUop(FieldId::Flags, uop, tags));
}

// ------------------------------------------------------ Casuistic

TEST(Casuistic, IsvWhenMostlyFree)
{
    // Situation I: available more than 50% of the time.
    const BitDecision d = chooseTechnique(0.3, 0.9);
    EXPECT_EQ(d.technique, Technique::Isv);
}

TEST(Casuistic, All1WhenZeroShareExceedsHalf)
{
    // Situation III: occupancy x bias > 50%.
    const BitDecision d = chooseTechnique(0.8, 0.9);
    EXPECT_EQ(d.technique, Technique::All1);
    EXPECT_DOUBLE_EQ(d.k, 1.0);
}

TEST(Casuistic, All0WhenOneShareExceedsHalf)
{
    const BitDecision d = chooseTechnique(0.8, 0.1);
    EXPECT_EQ(d.technique, Technique::All0);
}

TEST(Casuistic, All1KBalancesExactly)
{
    // Situation II: perfect balancing feasible (the paper's 75%
    // busy / 67%-of-total-time example sits exactly on the
    // boundary; use a clearly interior point).
    const BitDecision d = chooseTechnique(0.75, 0.6);
    EXPECT_EQ(d.technique, Technique::All1K);
    EXPECT_NEAR(d.k, 0.8, 1e-9);
    EXPECT_NEAR(expectedBias(d, 0.75, 0.6), 0.5, 1e-9);
}

TEST(Casuistic, All0KBalancesExactly)
{
    const BitDecision d = chooseTechnique(0.7, 0.3);
    EXPECT_EQ(d.technique, Technique::All0K);
    EXPECT_NEAR(expectedBias(d, 0.7, 0.3), 0.5, 1e-9);
}

TEST(Casuistic, IsvExpectedBiasIsHalf)
{
    const BitDecision d = chooseTechnique(0.2, 0.95);
    EXPECT_NEAR(expectedBias(d, 0.2, 0.95), 0.5, 1e-9);
}

/** Property sweep over the whole (occupancy, bias) grid: wherever
 *  balancing is feasible the expected bias is 50%; elsewhere the
 *  residual equals the provable floor occupancy*bias. */
class CasuisticGrid
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(CasuisticGrid, ExpectedBiasOptimal)
{
    const double occ = std::get<0>(GetParam());
    const double bias = std::get<1>(GetParam());
    const BitDecision d = chooseTechnique(occ, bias);
    const double result = expectedBias(d, occ, bias);
    const double zero_share = occ * bias;
    const double one_share = occ * (1.0 - bias);
    if (zero_share > 0.5) {
        // ALL1: residual bias towards 0 equals the provable floor.
        EXPECT_NEAR(result, zero_share, 1e-9);
    } else if (one_share > 0.5) {
        // ALL0: residual bias towards 1 equals the provable floor.
        EXPECT_NEAR(1.0 - result, one_share, 1e-9);
    } else {
        EXPECT_NEAR(result, 0.5, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CasuisticGrid,
    ::testing::Combine(
        ::testing::Values(0.1, 0.3, 0.55, 0.63, 0.8, 0.95),
        ::testing::Values(0.02, 0.2, 0.5, 0.8, 0.98)));

TEST(DutyGen, EmitsExactRate)
{
    DutyGenerator gen(0.75);
    int ones = 0;
    for (int i = 0; i < 1000; ++i)
        ones += gen.next();
    EXPECT_NEAR(ones / 1000.0, 0.75, 0.01);
}

TEST(DutyGen, ExtremesPinned)
{
    DutyGenerator all(1.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(all.next());
    DutyGenerator none(0.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(none.next());
}

TEST(Techniques, Names)
{
    EXPECT_STREQ(techniqueName(Technique::All1), "ALL1");
    EXPECT_STREQ(techniqueName(Technique::All1K), "ALL1-K%");
    EXPECT_STREQ(techniqueName(Technique::Isv), "ISV");
    EXPECT_STREQ(techniqueName(Technique::Unprotectable),
                 "unprotectable");
}

// ------------------------------------------------------ Scheduler

Uop
makeAluUop(Word src1, std::uint16_t imm)
{
    Uop uop;
    uop.cls = UopClass::IntAlu;
    uop.latency = 1;
    uop.srcReg1 = 0;
    uop.srcVal1 = src1;
    uop.hasImm = true;
    uop.imm = imm;
    uop.dstReg = 1;
    return uop;
}

TEST(Scheduler, AllocateReleaseLifecycle)
{
    Scheduler sched{SchedulerConfig{}};
    const int e = sched.allocate(makeAluUop(5, 3), RenameTags{}, 1);
    ASSERT_GE(e, 0);
    EXPECT_EQ(sched.busyCount(), 1u);
    sched.release(static_cast<unsigned>(e), 5, true);
    EXPECT_EQ(sched.busyCount(), 0u);
}

TEST(Scheduler, FullWhenAllSlotsBusy)
{
    SchedulerConfig cfg;
    cfg.numEntries = 2;
    Scheduler sched(cfg);
    EXPECT_GE(sched.allocate(makeAluUop(1, 1), RenameTags{}, 1), 0);
    EXPECT_GE(sched.allocate(makeAluUop(2, 2), RenameTags{}, 1), 0);
    EXPECT_TRUE(sched.full());
    EXPECT_EQ(sched.allocate(makeAluUop(3, 3), RenameTags{}, 1),
              -1);
}

TEST(Scheduler, OccupancyAccounting)
{
    SchedulerConfig cfg;
    cfg.numEntries = 4;
    Scheduler sched(cfg);
    const int e = sched.allocate(makeAluUop(1, 1), RenameTags{}, 0);
    sched.release(static_cast<unsigned>(e), 50, true);
    EXPECT_NEAR(sched.occupancy(100), 50.0 / 400.0, 1e-9);
}

TEST(Scheduler, ValidBitFollowsBusyState)
{
    SchedulerConfig cfg;
    cfg.numEntries = 1;
    Scheduler sched(cfg);
    const int e = sched.allocate(makeAluUop(1, 1), RenameTags{}, 0);
    sched.release(static_cast<unsigned>(e), 60, true);
    const auto bias = sched.biasVector(100);
    const unsigned valid_off =
        fieldLayout().spec(FieldId::Valid).offset;
    // Valid held 1 for 60 cycles, 0 for 40: bias0 = 0.4.
    EXPECT_NEAR(bias[valid_off], 0.4, 1e-9);
}

TEST(Scheduler, ProtectionRepairsAll1Field)
{
    SchedulerConfig cfg;
    cfg.numEntries = 1;
    Scheduler sched(cfg);
    std::vector<BitDecision> decisions(
        fieldLayout().totalBits(), BitDecision{});
    const FieldSpec &flags = fieldLayout().spec(FieldId::Flags);
    for (unsigned b = 0; b < flags.width; ++b)
        decisions[flags.offset + b] = {Technique::All1, 1.0};
    sched.configureProtection(decisions);
    sched.enableProtection(true);

    Uop uop = makeAluUop(0, 0); // flags = ZF only
    uop.flags = 0;
    const int e = sched.allocate(uop, RenameTags{}, 0);
    sched.release(static_cast<unsigned>(e), 10, true);
    const auto bias = sched.biasVector(100);
    // Flags bit 0: 10 cycles at 0 (busy), 90 cycles at 1 (ALL1).
    EXPECT_NEAR(bias[flags.offset], 0.1, 1e-9);
}

TEST(Scheduler, UnprotectedKeepsStaleContents)
{
    SchedulerConfig cfg;
    cfg.numEntries = 1;
    Scheduler sched(cfg);
    Uop uop = makeAluUop(0xffffffff, 0);
    uop.hasImm = false;
    uop.srcReg2 = 2;
    uop.srcVal2 = 0xffffffff;
    RenameTags tags;
    tags.ready1 = false; // operand captured: field in use
    tags.ready2 = false;
    const int e = sched.allocate(uop, tags, 0);
    sched.release(static_cast<unsigned>(e), 10, true);
    const auto bias = sched.biasVector(20);
    const FieldSpec &s1 = fieldLayout().spec(FieldId::Src1Data);
    // Stale ones persist through the idle period.
    EXPECT_NEAR(bias[s1.offset], 0.0, 1e-9);
}

TEST(Scheduler, IsvFieldBalancesOverTime)
{
    SchedulerConfig cfg;
    cfg.numEntries = 4;
    cfg.isvSampleInterval = 1;
    Scheduler sched(cfg);
    std::vector<BitDecision> decisions(
        fieldLayout().totalBits(), BitDecision{});
    const FieldSpec &imm = fieldLayout().spec(FieldId::Imm);
    for (unsigned b = 0; b < imm.width; ++b)
        decisions[imm.offset + b] = {Technique::Isv, 1.0};
    sched.configureProtection(decisions);
    sched.enableProtection(true);

    Rng rng(3);
    Cycle now = 0;
    std::vector<std::pair<int, Cycle>> live;
    for (int i = 0; i < 8000; ++i) {
        ++now;
        while (!live.empty() && live.front().second <= now) {
            sched.release(
                static_cast<unsigned>(live.front().first), now,
                true);
            live.erase(live.begin());
        }
        if ((i % 3) != 0)
            continue; // keep occupancy well below 50%
        Uop uop = makeAluUop(1, 0x0003); // biased immediate
        const int e = sched.allocate(uop, RenameTags{}, now);
        if (e >= 0)
            live.push_back({e, now + 3});
    }
    const auto bias = sched.biasVector(now);
    // Bit 15 of imm is always 0 while in use; ISV + meter must pull
    // its long-run bias towards 50%.
    EXPECT_NEAR(bias[imm.offset + 15], 0.5, 0.12);
}

// --------------------------------------------------------- Driver

TEST(SchedReplay, HitsTargetOccupancy)
{
    WorkloadSet w;
    Scheduler sched{SchedulerConfig{}};
    SchedulerReplay replay(sched, SchedReplayConfig{});
    TraceGenerator gen = w.generator(3);
    const SchedReplayResult r = replay.run(gen, 40000);
    EXPECT_EQ(r.allocated, 40000u);
    EXPECT_EQ(r.released, 40000u);
    EXPECT_NEAR(r.occupancy, 0.63, 0.08);
}

TEST(SchedReplay, ClockPersists)
{
    WorkloadSet w;
    Scheduler sched{SchedulerConfig{}};
    SchedulerReplay replay(sched, SchedReplayConfig{});
    TraceGenerator gen = w.generator(3);
    const SchedReplayResult r1 = replay.run(gen, 2000);
    const SchedReplayResult r2 = replay.run(gen, 2000);
    EXPECT_GT(r2.cycles, r1.cycles);
}

// -------------------------------------------------------- Profile

TEST(Profile, DecisionsCoverEveryBit)
{
    WorkloadSet w;
    const SchedulerProfile profile =
        profileScheduler(w, {0, 100, 300}, 15000);
    EXPECT_EQ(profile.bits.size(), fieldLayout().totalBits());
    EXPECT_NEAR(profile.slotOccupancy, 0.63, 0.1);

    const auto decisions = decideProtection(profile.bits);
    EXPECT_EQ(decisions.size(), fieldLayout().totalBits());
    // Valid is unprotectable.
    EXPECT_EQ(decisions[fieldLayout().spec(FieldId::Valid).offset]
                  .technique,
              Technique::Unprotectable);
    // Tags are self-balanced.
    const FieldSpec &dst = fieldLayout().spec(FieldId::DstTag);
    for (unsigned b = 0; b < dst.width; ++b)
        EXPECT_EQ(decisions[dst.offset + b].technique,
                  Technique::None);
    // Capture fields get ISV (available 70-75% of the time).
    const FieldSpec &s2 = fieldLayout().spec(FieldId::Src2Data);
    EXPECT_EQ(decisions[s2.offset].technique, Technique::Isv);
}

TEST(Profile, SummaryHasAllFields)
{
    std::vector<BitDecision> decisions(
        fieldLayout().totalBits(), BitDecision{});
    const auto summary = summarizeDecisions(decisions);
    EXPECT_EQ(summary.size(), numFields);
}

TEST(Profile, ProtectionReducesWorstBias)
{
    // End-to-end miniature of the Figure-8 experiment.
    WorkloadSet w;
    const SchedulerProfile profile =
        profileScheduler(w, {10, 210}, 15000);
    const auto decisions = decideProtection(profile.bits);

    auto worst = [&](bool protect) {
        Scheduler sched{SchedulerConfig{}};
        if (protect) {
            sched.configureProtection(decisions);
            sched.enableProtection(true);
        }
        SchedulerReplay replay(sched, SchedReplayConfig{});
        Cycle clock = 0;
        for (unsigned idx : {50u, 250u, 450u}) {
            TraceGenerator gen = w.generator(idx);
            clock = replay.run(gen, 15000).cycles;
        }
        return sched.worstFigure8Bias(clock);
    };
    const double baseline = worst(false);
    const double protected_bias = worst(true);
    EXPECT_GT(baseline, 0.95);
    EXPECT_LT(protected_bias, 0.70);
}

} // namespace
} // namespace penelope
