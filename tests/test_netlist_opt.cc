/**
 * @file
 * Tests for the optimizing netlist compiler (netlist_opt.{hh,cc}):
 * optimized vs --no-netlist-opt bit-identity on random netlists at
 * every supported batch width, AgingSummary identity on the Figure-2
 * circuit and the three adder topologies, per-pass unit tests (CSE,
 * constant folding, INV fusion), the idempotent-finalize contract,
 * the Kogge-Stone op-count reduction floor the CI enforces, and the
 * result-cache compatibility pin: the optimizer changes no statistic,
 * so the cache salt stays put and warm caches written by unoptimized
 * binaries replay with zero stores under the optimized engine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adder/adder.hh"
#include "adder/analysis.hh"
#include "adder/idle_inputs.hh"
#include "circuit/aging.hh"
#include "circuit/netlist.hh"
#include "circuit/netlist_opt.hh"
#include "common/rng.hh"
#include "core/experiments.hh"
#include "core/resultcache.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

/**
 * Build a random netlist exercising every builder, like the one in
 * test_netlist_batch.cc.  Deterministic in the Rng seed, so two
 * calls with equal seeds build identical gate lists -- which is how
 * the tests below get the same circuit compiled under both optimizer
 * modes.
 */
Netlist
randomNetlist(Rng &rng, unsigned num_inputs, unsigned num_gates)
{
    Netlist n;
    std::vector<SignalId> pool;
    for (unsigned i = 0; i < num_inputs; ++i)
        pool.push_back(n.addInput());
    pool.push_back(n.addConst(false));
    pool.push_back(n.addConst(true));

    const auto pick = [&] {
        return pool[rng.nextInt(
            static_cast<std::uint32_t>(pool.size()))];
    };
    for (unsigned g = 0; g < num_gates; ++g) {
        SignalId out = invalidSignal;
        switch (rng.nextInt(10)) {
          case 0:
            out = n.addInv(pick());
            break;
          case 1:
            out = n.addNand({pick(), pick()});
            break;
          case 2:
            out = n.addNor({pick(), pick()});
            break;
          case 3: {
            std::vector<SignalId> fanin;
            const unsigned k = 3 + rng.nextInt(3);
            for (unsigned i = 0; i < k; ++i)
                fanin.push_back(pick());
            out = rng.nextBool() ? n.addNand(fanin)
                                 : n.addNor(fanin);
            break;
          }
          case 4:
            out = n.addAnd(pick(), pick());
            break;
          case 5:
            out = n.addOr(pick(), pick());
            break;
          case 6:
            out = n.addXor(pick(), pick());
            break;
          case 7:
            out = n.addXnor(pick(), pick());
            break;
          case 8:
            out = n.addMux(pick(), pick(), pick());
            break;
          default:
            out = n.addTgXor(pick(), pick());
            break;
        }
        pool.push_back(out);
    }
    n.finalize();
    return n;
}

// ------------------------------------- optimized == unoptimized

TEST(NetlistOpt, RandomNetlistsBitIdenticalAtEveryWidth)
{
    // The same gate list compiled both ways must resolve every net
    // to the same lane bits at W = 1 and through evaluateBatchWide
    // at W = 2/4/8 (whichever kernel serves them on this host).
    Rng seed_rng(0x0b71);
    for (int trial = 0; trial < 12; ++trial) {
        const unsigned num_inputs = 1 + seed_rng.nextInt(12);
        const unsigned num_gates = 1 + seed_rng.nextInt(80);
        const std::uint64_t seed = seed_rng();

        Rng rng_opt(seed);
        Rng rng_ref(seed);
        ScopedNetlistOpt enable(true);
        Netlist opt = randomNetlist(rng_opt, num_inputs, num_gates);
        ASSERT_TRUE(opt.optStats().optimized);
        Netlist ref;
        {
            ScopedNetlistOpt disable(false);
            ref = randomNetlist(rng_ref, num_inputs, num_gates);
        }
        ASSERT_FALSE(ref.optStats().optimized);
        ASSERT_EQ(opt.numSignals(), ref.numSignals());
        EXPECT_LE(opt.wordCount(), ref.wordCount());

        std::vector<std::uint64_t> in_flat(opt.numInputs() * 8);
        for (auto &w : in_flat)
            w = seed_rng();

        std::vector<std::uint64_t> opt_words;
        std::vector<std::uint64_t> ref_words;
        std::vector<std::uint64_t> single(opt.numInputs());
        for (std::size_t i = 0; i < opt.numInputs(); ++i)
            single[i] = in_flat[i * 8];
        opt.evaluateBatch(single.data(), opt_words);
        ref.evaluateBatch(single.data(), ref_words);
        ASSERT_EQ(opt_words.size(), opt.wordCount());
        ASSERT_EQ(ref_words.size(), ref.numSignals());
        for (std::size_t s = 0; s < opt.numSignals(); ++s) {
            ASSERT_EQ(opt.laneWord(opt_words.data(), s),
                      ref.laneWord(ref_words.data(), s))
                << "trial " << trial << " net " << s;
        }

        for (unsigned net_w : {2u, 4u, 8u}) {
            std::vector<std::uint64_t> in(opt.numInputs() * net_w);
            for (std::size_t i = 0; i < opt.numInputs(); ++i)
                for (unsigned w = 0; w < net_w; ++w)
                    in[i * net_w + w] = in_flat[i * 8 + w];
            std::vector<std::uint64_t> opt_wide;
            std::vector<std::uint64_t> ref_wide;
            opt.evaluateBatchWide(in.data(), opt_wide, net_w);
            ref.evaluateBatchWide(in.data(), ref_wide, net_w);
            for (unsigned w = 0; w < net_w; ++w) {
                for (std::size_t s = 0; s < opt.numSignals(); ++s) {
                    ASSERT_EQ(opt.laneWordWide(opt_wide.data(),
                                               net_w, w, s),
                              ref.laneWordWide(ref_wide.data(),
                                               net_w, w, s))
                        << "trial " << trial << " W " << net_w
                        << " word " << w << " net " << s;
                }
            }
        }
    }
}

/** Exact equality of two summaries. */
void
expectSummariesIdentical(const AgingSummary &x,
                         const AgingSummary &y)
{
    EXPECT_EQ(x.worstNarrowZeroProb, y.worstNarrowZeroProb);
    EXPECT_EQ(x.worstWideZeroProb, y.worstWideZeroProb);
    EXPECT_EQ(x.narrowFullyStressedFraction,
              y.narrowFullyStressedFraction);
    EXPECT_EQ(x.guardband, y.guardband);
    EXPECT_EQ(x.numDevices, y.numDevices);
    EXPECT_EQ(x.numNarrow, y.numNarrow);
    EXPECT_EQ(x.numWide, y.numWide);
}

TEST(NetlistOpt, Figure2AgingSummaryIdentity)
{
    // Batched aging accounting over the optimized stream must
    // produce the same per-device probabilities and summary as the
    // unoptimized stream, device for device.
    Netlist opt;
    Netlist ref;
    {
        ScopedNetlistOpt enable(true);
        buildFigure2Circuit(opt);
        opt.finalize();
    }
    {
        ScopedNetlistOpt disable(false);
        buildFigure2Circuit(ref);
        ref.finalize();
    }

    Rng rng(0xf16a);
    PmosAgingTracker opt_tracker(opt);
    PmosAgingTracker ref_tracker(ref);
    std::vector<std::uint64_t> opt_words;
    std::vector<std::uint64_t> ref_words;
    std::uint64_t in[3];
    for (int round = 0; round < 5; ++round) {
        for (auto &w : in)
            w = rng();
        const std::uint64_t mask = rng();
        opt.evaluateBatch(in, opt_words);
        ref.evaluateBatch(in, ref_words);
        opt_tracker.observeBatch(opt_words.data(), mask);
        ref_tracker.observeBatch(ref_words.data(), mask);
    }
    ASSERT_EQ(opt_tracker.numDevices(), ref_tracker.numDevices());
    for (std::size_t d = 0; d < opt_tracker.numDevices(); ++d)
        EXPECT_EQ(opt_tracker.zeroProb(d), ref_tracker.zeroProb(d))
            << "device " << d;
    const GuardbandModel model = GuardbandModel::paperCalibrated();
    expectSummariesIdentical(opt_tracker.summarize(model),
                             ref_tracker.summarize(model));
}

TEST(NetlistOpt, AdderAgingIdentityAcrossTopologies)
{
    // Figure-4 sweep + Figure-5 real-operand probabilities on every
    // adder topology: optimized == unoptimized, value for value.
    WorkloadSet workload;
    TraceGenerator gen = workload.generator(2);
    const auto ops = collectAdderOperands(gen, 300);
    ASSERT_FALSE(ops.empty());
    const GuardbandModel model = GuardbandModel::paperCalibrated();

    for (int topology = 0; topology < 3; ++topology) {
        const auto make = [&](Adder *&out) -> void {
            switch (topology) {
              case 0:
                out = new LadnerFischerAdder(16);
                break;
              case 1:
                out = new RippleCarryAdder(16);
                break;
              default:
                out = new KoggeStoneAdder(16);
                break;
            }
        };
        Adder *opt_adder = nullptr;
        Adder *ref_adder = nullptr;
        {
            ScopedNetlistOpt enable(true);
            make(opt_adder);
        }
        {
            ScopedNetlistOpt disable(false);
            make(ref_adder);
        }
        ASSERT_TRUE(opt_adder->netlist().optStats().optimized);
        ASSERT_FALSE(ref_adder->netlist().optStats().optimized);

        AdderAgingAnalysis opt_an(*opt_adder, model);
        AdderAgingAnalysis ref_an(*ref_adder, model);

        const auto opt_sweep = opt_an.sweepPairs();
        const auto ref_sweep = ref_an.sweepPairs();
        ASSERT_EQ(opt_sweep.size(), ref_sweep.size());
        for (std::size_t i = 0; i < opt_sweep.size(); ++i) {
            EXPECT_EQ(opt_sweep[i].pair, ref_sweep[i].pair);
            EXPECT_EQ(opt_sweep[i].narrowFullyStressedFraction,
                      ref_sweep[i].narrowFullyStressedFraction)
                << opt_adder->name() << " pair " << i;
        }

        const auto opt_probs = opt_an.zeroProbsForOperands(ops);
        const auto ref_probs = ref_an.zeroProbsForOperands(ops);
        ASSERT_EQ(opt_probs.size(), ref_probs.size());
        for (std::size_t d = 0; d < opt_probs.size(); ++d)
            EXPECT_EQ(opt_probs[d], ref_probs[d])
                << opt_adder->name() << " device " << d;
        expectSummariesIdentical(opt_an.summarize(opt_probs),
                                 ref_an.summarize(ref_probs));

        delete opt_adder;
        delete ref_adder;
    }
}

// --------------------------------------------- per-pass unit tests

TEST(NetlistOpt, CseCollapsesDuplicateAndCommutedGates)
{
    ScopedNetlistOpt enable(true);
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    const SignalId x1 = n.addNand({a, b});
    const SignalId x2 = n.addNand({a, b});
    const SignalId x3 = n.addNand({b, a}); // commuted
    n.finalize();

    EXPECT_EQ(n.ref(x1).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(x1).word, n.ref(x2).word);
    EXPECT_EQ(n.ref(x1).word, n.ref(x3).word);
    EXPECT_EQ(n.ref(x2).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(x3).kind, NetRefKind::Word);
    // 2 inputs + 1 surviving NAND.
    EXPECT_EQ(n.wordCount(), 3u);
    EXPECT_EQ(n.optStats().cseReused, 2u);
}

TEST(NetlistOpt, DeMorganDualsShareOneOp)
{
    // NOR(!a, !b) == !NAND(a, b): the canonical family merges them,
    // so the NOR reads the NAND's word with inverted polarity.
    ScopedNetlistOpt enable(true);
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    const SignalId nand_ab = n.addNand({a, b});
    const SignalId na = n.addInv(a);
    const SignalId nb = n.addInv(b);
    const SignalId nor_n = n.addNor({na, nb});
    n.finalize();

    ASSERT_EQ(n.ref(nand_ab).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(nor_n).kind, NetRefKind::InvWord);
    EXPECT_EQ(n.ref(nor_n).word, n.ref(nand_ab).word);
}

TEST(NetlistOpt, ConstantAndTiedInputFolding)
{
    ScopedNetlistOpt enable(true);
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId c0 = n.addConst(false);
    const SignalId c1 = n.addConst(true);
    const SignalId nand_a0 = n.addNand({a, c0}); // == 1
    const SignalId nand_a1 = n.addNand({a, c1}); // == !a
    const SignalId nand_aa = n.addNand({a, a});  // == !a
    const SignalId nor_a1 = n.addNor({a, c1});   // == 0
    const SignalId xor_aa = n.addTgXor(a, a);    // == 0
    n.finalize();

    EXPECT_EQ(n.ref(nand_a0).kind, NetRefKind::Const1);
    EXPECT_EQ(n.ref(nor_a1).kind, NetRefKind::Const0);
    EXPECT_EQ(n.ref(xor_aa).kind, NetRefKind::Const0);
    EXPECT_EQ(n.ref(nand_a1).kind, NetRefKind::InvWord);
    EXPECT_EQ(n.ref(nand_a1).word, n.ref(a).word);
    EXPECT_EQ(n.ref(nand_aa).kind, NetRefKind::InvWord);
    EXPECT_EQ(n.ref(nand_aa).word, n.ref(a).word);
    // Everything folded: only the input survives as an op.
    EXPECT_EQ(n.wordCount(), 1u);
    EXPECT_GT(n.optStats().constFolded, 0u);
}

TEST(NetlistOpt, InvFusionAliasesInsteadOfMaterializing)
{
    ScopedNetlistOpt enable(true);
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId inv = n.addInv(a);
    const SignalId buf = n.addBuf(a); // 2 inverters -> plain alias
    const SignalId inv3 = n.addInv(inv); // !!a -> plain alias
    n.finalize();

    EXPECT_EQ(n.ref(inv).kind, NetRefKind::InvWord);
    EXPECT_EQ(n.ref(inv).word, n.ref(a).word);
    EXPECT_EQ(n.ref(buf).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(buf).word, n.ref(a).word);
    EXPECT_EQ(n.ref(inv3).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(inv3).word, n.ref(a).word);
    EXPECT_EQ(n.wordCount(), 1u);
    EXPECT_GE(n.optStats().invFused, 4u);
}

TEST(NetlistOpt, TgXorSharesAcrossCommutedOperands)
{
    ScopedNetlistOpt enable(true);
    Netlist n;
    const SignalId a = n.addInput();
    const SignalId b = n.addInput();
    const SignalId x = n.addTgXor(a, b);
    const SignalId y = n.addTgXor(b, a);
    const SignalId xn = n.addTgXor(n.addInv(a), b); // XNOR by parity
    n.finalize();

    ASSERT_EQ(n.ref(x).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(y).kind, NetRefKind::Word);
    EXPECT_EQ(n.ref(y).word, n.ref(x).word);
    EXPECT_EQ(n.ref(xn).kind, NetRefKind::InvWord);
    EXPECT_EQ(n.ref(xn).word, n.ref(x).word);
}

TEST(NetlistOpt, DisabledModeKeepsIdentityNumbering)
{
    ScopedNetlistOpt disable(false);
    Rng rng(0x1d);
    Netlist n = randomNetlist(rng, 6, 30);
    EXPECT_FALSE(n.optStats().optimized);
    EXPECT_EQ(n.wordCount(), n.numSignals());
    EXPECT_EQ(n.numCompiledOps(), n.numSignals());
    EXPECT_EQ(n.optStats().opsBaseline, n.optStats().opsFinal);
    for (SignalId s = 0; s < n.numSignals(); ++s) {
        EXPECT_EQ(n.ref(s).kind, NetRefKind::Word);
        EXPECT_EQ(n.ref(s).word, s);
    }
}

// ---------------------------------------------- finalize contract

TEST(NetlistOpt, FinalizeIsIdempotent)
{
    Netlist n;
    buildFigure2Circuit(n);
    n.finalize();
    const std::size_t pmos = n.numPmos();
    const std::size_t ops = n.numCompiledOps();
    const std::size_t words = n.wordCount();
    const unsigned depth = n.depth();

    // A second call -- same or different fanout threshold -- is a
    // no-op: no device double-extraction, no recompilation.
    n.finalize();
    n.finalize(2);
    EXPECT_EQ(n.numPmos(), pmos);
    EXPECT_EQ(n.numCompiledOps(), ops);
    EXPECT_EQ(n.wordCount(), words);
    EXPECT_EQ(n.depth(), depth);
}

TEST(NetlistOpt, AdderDefensiveRefinalizeIsNoOp)
{
    LadnerFischerAdder adder(16);
    Netlist &n = adder.netlist();
    const std::size_t pmos = n.numPmos();
    const std::size_t words = n.wordCount();
    n.finalize();
    EXPECT_EQ(n.numPmos(), pmos);
    EXPECT_EQ(n.wordCount(), words);
}

// --------------------------------------------------- perf floors

TEST(NetlistOpt, KoggeStoneReductionMeetsCiFloor)
{
    // The CI perf gate asserts >= 20% op-count reduction on the
    // 32-bit Kogge-Stone adder; pin it here too so a pass
    // regression fails fast in debug runs.
    ScopedNetlistOpt enable(true);
    KoggeStoneAdder ks(32);
    const NetlistOptStats &stats = ks.netlist().optStats();
    ASSERT_TRUE(stats.optimized);
    EXPECT_EQ(stats.opsBaseline, ks.netlist().numGates());
    EXPECT_EQ(stats.opsFinal, ks.netlist().numCompiledOps());
    EXPECT_GE(stats.reductionPercent(), 20.0)
        << "opsBaseline " << stats.opsBaseline << " opsFinal "
        << stats.opsFinal;
    // INV fusion carries the prefix-adder win (every wideAnd/wideOr
    // cell ends in an inverter); CSE has nothing to merge here
    // because all the combine cells cover distinct bit ranges.
    EXPECT_GT(stats.invFused, 0u);
}

TEST(NetlistOpt, BlockedBatchWordsRespectsCapabilityAndBudget)
{
    // The cache-blocked width never exceeds the host capability,
    // steps down from 8 only (to 4), and tiny netlists always get
    // the full capability width.
    Netlist tiny;
    buildFigure2Circuit(tiny);
    tiny.finalize();
    EXPECT_EQ(tiny.blockedBatchWords(),
              Netlist::preferredBatchWords());

    KoggeStoneAdder ks(32);
    const unsigned w = ks.netlist().blockedBatchWords();
    EXPECT_TRUE(w == 2 || w == 4 || w == 8);
    EXPECT_LE(w, Netlist::preferredBatchWords());
    if (Netlist::preferredBatchWords() == 8 &&
        ks.netlist().wordCount() * 64 > 24 * 1024) {
        EXPECT_EQ(w, 4u);
    }
}

// -------------------------------------- result-cache compatibility

TEST(NetlistOptCache, SaltUnchangedByOptimizingCompiler)
{
    // The optimizing compiler changes no statistic, so the salt did
    // NOT bump: caches written by unoptimized builds stay valid.
    // If a later change alters any experiment output, bump the salt
    // and update this pin in the same commit.
    EXPECT_EQ(kResultCacheSalt, "penelope-result-cache-v1");
}

TEST(NetlistOptCache, WarmCacheFromUnoptimizedRunReplaysZeroStores)
{
    // Cold-populate the result cache with the optimizer OFF (the
    // PR-7 binary), then re-run the adder experiment with the
    // optimizer ON: every entry must replay as a pure hit (no new
    // stores) and the results must be bit-identical.
    const WorkloadSet workload;
    ExperimentOptions options;
    options.traceStride = 96;
    options.uopsPerTrace = 2'000;
    options.cacheUops = 2'000;
    options.adderOperandSamples = 400;

    ResultCache cache;
    options.cache = &cache;

    AdderExperimentResult cold;
    {
        ScopedNetlistOpt disable(false);
        cold = runAdderExperiment(workload, options);
    }
    const std::uint64_t stores = cache.stats().stores;
    EXPECT_GT(stores, 0u);

    ScopedNetlistOpt enable(true);
    const AdderExperimentResult warm =
        runAdderExperiment(workload, options);
    EXPECT_EQ(cache.stats().stores, stores); // pure hits
    EXPECT_GT(cache.stats().hits, 0u);

    ASSERT_EQ(cold.pairSweep.size(), warm.pairSweep.size());
    for (std::size_t i = 0; i < cold.pairSweep.size(); ++i) {
        EXPECT_EQ(cold.pairSweep[i].pair, warm.pairSweep[i].pair);
        EXPECT_EQ(cold.pairSweep[i].narrowFullyStressedFraction,
                  warm.pairSweep[i].narrowFullyStressedFraction);
    }
    EXPECT_EQ(cold.bestPair, warm.bestPair);
    EXPECT_EQ(cold.baselineGuardband, warm.baselineGuardband);
    ASSERT_EQ(cold.scenarios.size(), warm.scenarios.size());
    for (std::size_t i = 0; i < cold.scenarios.size(); ++i) {
        EXPECT_EQ(cold.scenarios[i].utilization,
                  warm.scenarios[i].utilization);
        EXPECT_EQ(cold.scenarios[i].guardband,
                  warm.scenarios[i].guardband);
    }
    EXPECT_EQ(cold.priorityUtilMin, warm.priorityUtilMin);
    EXPECT_EQ(cold.priorityUtilMax, warm.priorityUtilMax);
    EXPECT_EQ(cold.uniformUtil, warm.uniformUtil);
    EXPECT_EQ(cold.efficiency, warm.efficiency);
}

} // namespace
} // namespace penelope
