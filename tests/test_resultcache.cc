/**
 * @file
 * Tests for the content-addressed result cache: key construction,
 * payload codecs (round-trip and corruption rejection), the
 * disk-backed store's treat-anything-broken-as-a-miss contract,
 * and the end-to-end properties the experiment engine depends on
 * -- cold == warm == uncached statistics at any worker count, no
 * cross-options poisoning, and shard/merge reassembly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "cache/timing.hh"
#include "common/rng.hh"
#include "core/engine.hh"
#include "core/experiments.hh"
#include "core/resultcache.hh"
#include "core/serialize.hh"
#include "scheduler/driver.hh"
#include "scheduler/profile.hh"
#include "trace/attack.hh"
#include "trace/workload.hh"

namespace penelope {
namespace {

/** Fresh temp directory per test. */
std::string
tempDir(const char *name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        (std::string("penelope_rc_") + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** Small, fast experiment options (cache/jobs default off). */
ExperimentOptions
fastOptions()
{
    ExperimentOptions options;
    options.traceStride = 96;
    options.uopsPerTrace = 2'000;
    options.cacheUops = 2'000;
    options.adderOperandSamples = 400;
    return options;
}

// --------------------------------------------------- key building

TEST(CacheKey, FieldsAndOrderAndDomainAllMatter)
{
    const Hash128 base =
        CacheKeyBuilder("d").u32(1).u64(2).digest();
    EXPECT_EQ(base, CacheKeyBuilder("d").u32(1).u64(2).digest());
    EXPECT_NE(base, CacheKeyBuilder("e").u32(1).u64(2).digest());
    EXPECT_NE(base, CacheKeyBuilder("d").u32(2).u64(2).digest());
    EXPECT_NE(base, CacheKeyBuilder("d").u32(1).u64(3).digest());
    EXPECT_NE(base, CacheKeyBuilder("d").u64(2).u32(1).digest());
    // Same bit pattern through a different typed appender differs.
    EXPECT_NE(base, CacheKeyBuilder("d").u64(1).u64(2).digest());
}

TEST(CacheKey, StringFramingPreventsConcatenationCollisions)
{
    EXPECT_NE(CacheKeyBuilder("d").str("ab").str("c").digest(),
              CacheKeyBuilder("d").str("a").str("bc").digest());
    EXPECT_NE(CacheKeyBuilder("d").str("").digest(),
              CacheKeyBuilder("d").digest());
}

TEST(CacheKey, SchedulerReplayKeyCoversDecisions)
{
    std::vector<BitDecision> a(4);
    std::vector<BitDecision> b(4);
    b[2].technique = Technique::All1K;
    b[2].k = 0.3;
    const auto key = [&](const std::vector<BitDecision> &d) {
        return schedulerReplayKey(SchedulerConfig(),
                                  SchedReplayConfig(), 1000, d,
                                  0x1234, 7);
    };
    EXPECT_EQ(key(a), key(a));
    EXPECT_NE(key(a), key(b));
    EXPECT_NE(key(a), key(std::vector<BitDecision>()));
}

// ------------------------------------------------- codec round-trip

template <class T>
std::string
encodeToString(const T &value)
{
    ByteWriter w;
    encodeResult(w, value);
    return w.data();
}

template <class T>
void
expectRoundTrip(const T &value, T &out)
{
    const std::string bytes = encodeToString(value);
    ByteReader r(bytes);
    ASSERT_TRUE(decodeResult(r, out));
    EXPECT_TRUE(r.atEnd());
}

TEST(ResultCodec, IsvStatsRoundTrip)
{
    IsvStats stats;
    stats.updatesApplied = 0x1122334455667788ULL;
    stats.updatesDiscarded = 42;
    stats.updatesSkipped = 7;
    IsvStats out;
    expectRoundTrip(stats, out);
    EXPECT_EQ(out.updatesApplied, stats.updatesApplied);
    EXPECT_EQ(out.updatesDiscarded, stats.updatesDiscarded);
    EXPECT_EQ(out.updatesSkipped, stats.updatesSkipped);
}

TEST(ResultCodec, BitBiasTrackerRoundTripAcrossWidths)
{
    Rng rng(0xc0dec);
    for (unsigned width : {1u, 7u, 32u, 64u, 65u, 80u, 128u,
                           144u, 192u}) {
        BitBiasTracker tracker(width);
        for (int i = 0; i < 200; ++i) {
            BitWord value(width);
            for (unsigned bit = 0; bit < width; ++bit) {
                if (rng.nextBool(0.3))
                    value.setBit(bit, true);
            }
            tracker.observe(value, 1 + rng.nextInt(1000));
        }
        BitBiasTracker out(1);
        expectRoundTrip(tracker, out);
        ASSERT_EQ(out.width(), tracker.width());
        EXPECT_EQ(out.totalTime(), tracker.totalTime());
        for (unsigned bit = 0; bit < width; ++bit) {
            EXPECT_EQ(out.zeroTime(bit), tracker.zeroTime(bit));
            EXPECT_EQ(out.zeroProbability(bit),
                      tracker.zeroProbability(bit));
        }
    }
}

TEST(ResultCodec, SchedulerStressRoundTripFromRealReplay)
{
    Scheduler sched{SchedulerConfig{}};
    SchedulerReplay replay(sched, SchedReplayConfig());
    AttackTraceGenerator gen{AttackConfig{}};
    const SchedReplayResult r = replay.run(gen, 3'000);
    const SchedulerStress stress = sched.snapshotStress(r.cycles);

    SchedulerStress out;
    expectRoundTrip(stress, out);
    EXPECT_EQ(out.numEntries, stress.numEntries);
    EXPECT_EQ(out.cycles, stress.cycles);
    EXPECT_EQ(out.busyIntegral, stress.busyIntegral);
    EXPECT_EQ(out.fieldUseTime, stress.fieldUseTime);
    EXPECT_EQ(out.biasVector(), stress.biasVector());
    EXPECT_EQ(out.occupancy(), stress.occupancy());
    EXPECT_EQ(out.worstFigure8Bias(), stress.worstFigure8Bias());
}

TEST(ResultCodec, PipelineStatsRoundTrip)
{
    PipelineStats stats;
    stats.cycles = 123456;
    stats.uops = 7890;
    stats.cpi = 1.2345;
    for (unsigned a = 0; a < 4; ++a)
        stats.adderUtilization[a] = 0.1 * (a + 1);
    stats.intRfOccupancy = 0.46;
    stats.fpRfOccupancy = 0.31;
    stats.schedOccupancy = 0.63;
    stats.intRfPortFree = 0.92;
    stats.fpRfPortFree = 0.86;
    stats.schedPortFree = 0.77;
    stats.dl0Hits = 1111;
    stats.dl0Misses = 22;
    stats.dtlbMisses = 3;
    stats.mruHitFraction[0] = 0.9;
    stats.mruHitFraction[1] = 0.07;
    stats.mruHitFraction[2] = 0.03;

    PipelineStats out;
    expectRoundTrip(stats, out);
    EXPECT_EQ(out.cycles, stats.cycles);
    EXPECT_EQ(out.uops, stats.uops);
    EXPECT_EQ(out.cpi, stats.cpi);
    for (unsigned a = 0; a < 4; ++a)
        EXPECT_EQ(out.adderUtilization[a],
                  stats.adderUtilization[a]);
    EXPECT_EQ(out.schedOccupancy, stats.schedOccupancy);
    EXPECT_EQ(out.dl0Hits, stats.dl0Hits);
    EXPECT_EQ(out.mruHitFraction[2], stats.mruHitFraction[2]);
}

TEST(ResultCodec, MemLossSampleRoundTrip)
{
    MemLossSample sample;
    sample.loss = 0.0123;
    sample.normalizedCycles = 1.0123;
    sample.dl0InvertRatio = 0.5;
    sample.dtlbInvertRatio = 0.25;
    MemLossSample out;
    expectRoundTrip(sample, out);
    EXPECT_EQ(out.loss, sample.loss);
    EXPECT_EQ(out.normalizedCycles, sample.normalizedCycles);
    EXPECT_EQ(out.dl0InvertRatio, sample.dl0InvertRatio);
    EXPECT_EQ(out.dtlbInvertRatio, sample.dtlbInvertRatio);
}

TEST(ResultCodec, OperandVectorRoundTrip)
{
    std::vector<OperandSample> samples;
    Rng rng(0x0b5);
    for (int i = 0; i < 500; ++i) {
        samples.push_back(
            {static_cast<std::uint32_t>(rng()),
             static_cast<std::uint32_t>(rng()),
             rng.nextBool(0.1)});
    }
    std::vector<OperandSample> out;
    expectRoundTrip(samples, out);
    ASSERT_EQ(out.size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(out[i].a, samples[i].a);
        EXPECT_EQ(out[i].b, samples[i].b);
        EXPECT_EQ(out[i].cin, samples[i].cin);
    }
}

// -------------------------------------------- corrupt payloads miss

TEST(ResultCodec, RejectsTruncationWrongTagAndBadInvariants)
{
    IsvStats stats;
    stats.updatesApplied = 5;
    const std::string bytes = encodeToString(stats);

    // Truncation at every prefix length fails, never crashes.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        ByteReader r(std::string_view(bytes).substr(0, len));
        IsvStats out;
        EXPECT_FALSE(decodeResult(r, out) && r.atEnd());
    }

    // A different type's payload is rejected by tag.
    {
        ByteReader r(bytes);
        MemLossSample out;
        EXPECT_FALSE(decodeResult(r, out));
    }

    // Trailing garbage is not silently accepted.
    {
        const std::string extended = bytes + "x";
        ByteReader r(extended);
        IsvStats out;
        EXPECT_TRUE(decodeResult(r, out));
        EXPECT_FALSE(r.atEnd());
    }

    // A tracker whose zero-time exceeds its total is invalid.
    {
        BitBiasTracker tracker(4);
        tracker.observe(Word(0), 10);
        std::string blob = encodeToString(tracker);
        // Overwrite total-time (bytes 6..13 after tag, version,
        // width) with a value below the zero-times.
        for (int i = 0; i < 8; ++i)
            blob[6 + i] = 0;
        ByteReader r(blob);
        BitBiasTracker out(1);
        EXPECT_FALSE(decodeResult(r, out));
    }
}

// ------------------------------------------------ ResultCache store

TEST(ResultCache, MemoryStoreAndLookup)
{
    ResultCache cache;
    const Hash128 key = CacheKeyBuilder("t").u32(1).digest();
    std::string payload;
    EXPECT_FALSE(cache.lookup(key, payload));
    cache.store(key, "hello");
    ASSERT_TRUE(cache.lookup(key, payload));
    EXPECT_EQ(payload, "hello");
    EXPECT_EQ(cache.size(), 1u);
    const ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
}

TEST(ResultCache, DiskStorePersistsAcrossInstances)
{
    const std::string dir = tempDir("persist");
    const Hash128 key = CacheKeyBuilder("t").u32(2).digest();
    {
        ResultCache cache(dir);
        cache.store(key, "payload-bytes");
    }
    ResultCache cache(dir);
    std::string payload;
    ASSERT_TRUE(cache.lookup(key, payload));
    EXPECT_EQ(payload, "payload-bytes");
}

TEST(ResultCache, ExportImportMovesEntries)
{
    const std::string file =
        tempDir("xfer") + "/entries.bin";
    ResultCache source;
    std::vector<Hash128> keys;
    for (std::uint32_t i = 0; i < 100; ++i) {
        const Hash128 key =
            CacheKeyBuilder("t").u32(i).digest();
        keys.push_back(key);
        source.store(key, "v" + std::to_string(i));
    }
    ASSERT_TRUE(source.exportTo(file));

    ResultCache dest;
    ASSERT_TRUE(dest.importFrom(file));
    EXPECT_EQ(dest.size(), 100u);
    std::string payload;
    ASSERT_TRUE(dest.lookup(keys[42], payload));
    EXPECT_EQ(payload, "v42");

    EXPECT_FALSE(dest.importFrom(file + ".does-not-exist"));
}

TEST(ResultCache, SaltUnchangedByBatchedNetlistEngine)
{
    // The PR that introduced the word-parallel netlist engine kept
    // every statistic bit-identical to the scalar form, so the
    // cache salt did NOT bump: stores written before it stay
    // valid.  If a later change alters simulator behaviour, bump
    // the salt and update this pin in the same commit.
    EXPECT_EQ(kResultCacheSalt, "penelope-result-cache-v1");
}

TEST(ResultCache, CompactDropsUntouchedEntries)
{
    const std::string dir = tempDir("gc");
    std::vector<Hash128> stale_keys;
    std::vector<Hash128> live_keys;
    for (std::uint32_t i = 0; i < 60; ++i)
        stale_keys.push_back(
            CacheKeyBuilder("old-salt").u32(i).digest());
    for (std::uint32_t i = 0; i < 40; ++i)
        live_keys.push_back(
            CacheKeyBuilder("live").u32(i).digest());

    // Populate a store with both generations.
    {
        ResultCache cache(dir);
        for (std::uint32_t i = 0; i < 60; ++i)
            cache.store(stale_keys[i], "stale-" +
                            std::to_string(i));
        for (std::uint32_t i = 0; i < 40; ++i)
            cache.store(live_keys[i], "live-" +
                            std::to_string(i));
    }

    // A later process looks up only the live generation (the warm
    // run of the current configuration), then compacts.
    {
        ResultCache cache(dir);
        std::string payload;
        for (const Hash128 &key : live_keys)
            ASSERT_TRUE(cache.lookup(key, payload));
        EXPECT_EQ(cache.compact(), 60u);
        EXPECT_EQ(cache.size(), 40u);
    }

    // The GC'd store still serves every live entry bit-identically
    // and the stale generation is gone from disk.
    ResultCache reopened(dir);
    std::string payload;
    for (std::uint32_t i = 0; i < 40; ++i) {
        ASSERT_TRUE(reopened.lookup(live_keys[i], payload));
        EXPECT_EQ(payload, "live-" + std::to_string(i));
    }
    for (const Hash128 &key : stale_keys)
        EXPECT_FALSE(reopened.lookup(key, payload));

    // Compacted stripes accept fresh appends.
    const Hash128 fresh = CacheKeyBuilder("fresh").u32(7).digest();
    reopened.store(fresh, "fresh-payload");
    ResultCache again(dir);
    ASSERT_TRUE(again.lookup(fresh, payload));
    EXPECT_EQ(payload, "fresh-payload");
}

TEST(ResultCache, CompactKeepsFreshStoresAndMemoryOnlyWorks)
{
    // Entries stored in this process are live by definition.
    ResultCache cache;
    const Hash128 stored = CacheKeyBuilder("s").u32(1).digest();
    cache.store(stored, "x");
    EXPECT_EQ(cache.compact(), 0u);
    std::string payload;
    EXPECT_TRUE(cache.lookup(stored, payload));

    // Imported-but-never-consulted entries are collectable.
    const std::string file = tempDir("gc_mem") + "/entries.bin";
    ASSERT_TRUE(cache.exportTo(file));
    ResultCache dest;
    ASSERT_TRUE(dest.importFrom(file));
    EXPECT_EQ(dest.size(), 1u);
    EXPECT_EQ(dest.compact(), 1u);
    EXPECT_EQ(dest.size(), 0u);
}

TEST(ResultCache, CorruptTruncatedAndForeignFilesAreMisses)
{
    const std::string dir = tempDir("corrupt");
    std::vector<Hash128> keys;
    {
        ResultCache cache(dir);
        for (std::uint32_t i = 0; i < 64; ++i) {
            keys.push_back(
                CacheKeyBuilder("t").u32(i).digest());
            cache.store(keys.back(),
                        std::string(50, 'a' + (i % 26)));
        }
    }

    // Flip one byte in the middle of every stripe file, truncate
    // the tail of one, and replace another with garbage.
    unsigned file_index = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        const auto size = std::filesystem::file_size(entry);
        if (file_index == 0 && size > 16) {
            std::filesystem::resize_file(entry, size - 9);
        } else if (file_index == 1) {
            std::ofstream out(entry.path(),
                              std::ios::binary | std::ios::trunc);
            out << "not a cache file at all";
        } else {
            std::fstream io(entry.path(),
                            std::ios::binary | std::ios::in |
                                std::ios::out);
            io.seekp(static_cast<std::streamoff>(size / 2));
            io.put('\xff');
        }
        ++file_index;
    }

    // Every key must now either hit with the original payload or
    // miss; no read may fail hard.
    {
        ResultCache cache(dir);
        unsigned misses = 0;
        for (const Hash128 &key : keys) {
            std::string payload;
            if (!cache.lookup(key, payload))
                ++misses;
            else
                EXPECT_EQ(payload.size(), 50u);
        }
        EXPECT_GT(misses, 0u);
        EXPECT_GT(cache.stats().badRecords, 0u);

        // The damaged stripes accept fresh stores again (damaged
        // tails are cut back so the appends stay reachable).
        for (std::uint32_t i = 0; i < 64; ++i) {
            cache.store(CacheKeyBuilder("fresh").u32(i).digest(),
                        "new-" + std::to_string(i));
        }
    }

    // The fresh entries survive a reopen.  Only the stripe whose
    // file was replaced with a foreign blob may drop its share
    // (it is left untouched and never appended to).
    ResultCache reopened(dir);
    unsigned fresh_hits = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
        std::string payload;
        if (reopened.lookup(
                CacheKeyBuilder("fresh").u32(i).digest(),
                payload)) {
            EXPECT_EQ(payload, "new-" + std::to_string(i));
            ++fresh_hits;
        }
    }
    EXPECT_GE(fresh_hits, 48u);
}

// ------------------------------------- engine-level cache behaviour

/** Exact equality of two register-file experiment results. */
void
expectIdentical(const RegFileExperimentResult &a,
                const RegFileExperimentResult &b)
{
    EXPECT_EQ(a.baselineBias, b.baselineBias);
    EXPECT_EQ(a.isvBias, b.isvBias);
    EXPECT_EQ(a.baselineWorst, b.baselineWorst);
    EXPECT_EQ(a.isvWorst, b.isvWorst);
    EXPECT_EQ(a.freeFraction, b.freeFraction);
    EXPECT_EQ(a.guardbandBaseline, b.guardbandBaseline);
    EXPECT_EQ(a.guardbandIsv, b.guardbandIsv);
    EXPECT_EQ(a.isvStats.updatesApplied,
              b.isvStats.updatesApplied);
    EXPECT_EQ(a.isvStats.updatesDiscarded,
              b.isvStats.updatesDiscarded);
    EXPECT_EQ(a.isvStats.updatesSkipped,
              b.isvStats.updatesSkipped);
}

/** Exact equality of two scheduler experiment results. */
void
expectIdentical(const SchedulerExperimentResult &a,
                const SchedulerExperimentResult &b)
{
    EXPECT_EQ(a.baselineBias, b.baselineBias);
    EXPECT_EQ(a.protectedBias, b.protectedBias);
    EXPECT_EQ(a.baselineWorstFig8, b.baselineWorstFig8);
    EXPECT_EQ(a.protectedWorstFig8, b.protectedWorstFig8);
    EXPECT_EQ(a.occupancy, b.occupancy);
    EXPECT_EQ(a.guardband, b.guardband);
    EXPECT_EQ(a.efficiency, b.efficiency);
}

TEST(CachedEngine, ColdWarmUncachedAndJobsAllBitIdentical)
{
    const WorkloadSet workload;
    ExperimentOptions options = fastOptions();

    const RegFileExperimentResult uncached =
        runRegFileExperiment(workload, false, options);

    ResultCache cache;
    options.cache = &cache;
    const RegFileExperimentResult cold =
        runRegFileExperiment(workload, false, options);
    const std::uint64_t stores = cache.stats().stores;
    EXPECT_GT(stores, 0u);

    const RegFileExperimentResult warm =
        runRegFileExperiment(workload, false, options);
    EXPECT_EQ(cache.stats().stores, stores); // pure hits

    options.jobs = 4;
    const RegFileExperimentResult warm4 =
        runRegFileExperiment(workload, false, options);

    expectIdentical(cold, uncached);
    expectIdentical(warm, uncached);
    expectIdentical(warm4, uncached);
}

TEST(CachedEngine, ChangedOptionsNeverPoisonResults)
{
    const WorkloadSet workload;
    ResultCache cache;

    ExperimentOptions small = fastOptions();
    ExperimentOptions large = fastOptions();
    large.uopsPerTrace = 3'000;

    // Uncached references.
    const auto ref_small =
        runRegFileExperiment(workload, false, small);
    const auto ref_large =
        runRegFileExperiment(workload, false, large);
    ASSERT_NE(ref_small.baselineWorst, ref_large.baselineWorst);

    // One shared cache across both option sets, run twice each:
    // every run must match its own uncached reference.
    small.cache = &cache;
    large.cache = &cache;
    expectIdentical(runRegFileExperiment(workload, false, small),
                    ref_small);
    expectIdentical(runRegFileExperiment(workload, false, large),
                    ref_large);
    expectIdentical(runRegFileExperiment(workload, false, small),
                    ref_small);
    expectIdentical(runRegFileExperiment(workload, false, large),
                    ref_large);
}

TEST(CachedEngine, GcdStoreServesBitIdenticalWarmRuns)
{
    const WorkloadSet workload;
    const std::string dir = tempDir("engine_gc");

    ExperimentOptions options = fastOptions();
    const RegFileExperimentResult uncached =
        runRegFileExperiment(workload, false, options);

    // Fill the store with the current options AND a stale
    // generation (an options mix that will "no longer occur").
    std::size_t entries_with_stale = 0;
    {
        ResultCache cache(dir);
        ExperimentOptions stale = fastOptions();
        stale.uopsPerTrace = 3'000;
        stale.cache = &cache;
        runRegFileExperiment(workload, false, stale);
        options.cache = &cache;
        runRegFileExperiment(workload, false, options);
        entries_with_stale = cache.size();
    }

    // Warm run of only the current options, then GC.
    std::size_t entries_after_gc = 0;
    {
        ResultCache cache(dir);
        options.cache = &cache;
        const RegFileExperimentResult warm =
            runRegFileExperiment(workload, false, options);
        expectIdentical(warm, uncached);
        EXPECT_EQ(cache.stats().stores, 0u);
        EXPECT_GT(cache.compact(), 0u);
        entries_after_gc = cache.size();
    }
    EXPECT_LT(entries_after_gc, entries_with_stale);

    // The GC'd store still serves a fully warm, bit-identical run.
    ResultCache cache(dir);
    options.cache = &cache;
    const RegFileExperimentResult warm_after_gc =
        runRegFileExperiment(workload, false, options);
    expectIdentical(warm_after_gc, uncached);
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().decodeFailures, 0u);
}

TEST(CachedEngine, CorruptDiskCacheReproducesColdRunExactly)
{
    const WorkloadSet workload;
    const std::string dir = tempDir("engine_corrupt");

    ExperimentOptions options = fastOptions();
    const auto reference =
        runRegFileExperiment(workload, false, options);

    {
        ResultCache cache(dir);
        options.cache = &cache;
        runRegFileExperiment(workload, false, options);
    }

    // Bit-flip one payload byte in every stored stripe file.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        const auto size = std::filesystem::file_size(entry);
        std::fstream io(entry.path(), std::ios::binary |
                            std::ios::in | std::ios::out);
        io.seekg(static_cast<std::streamoff>(size / 2));
        const char byte = static_cast<char>(io.get());
        io.seekp(static_cast<std::streamoff>(size / 2));
        io.put(static_cast<char>(byte ^ 0x40));
    }

    ResultCache cache(dir);
    options.cache = &cache;
    const auto after =
        runRegFileExperiment(workload, false, options);
    expectIdentical(after, reference);
}

TEST(CachedEngine, ShardMergeReproducesUnshardedRun)
{
    const WorkloadSet workload;
    const std::string dir = tempDir("shards");

    ExperimentOptions options = fastOptions();
    options.traceStride = 48;
    const auto reference =
        runSchedulerExperiment(workload, options);

    // Two shard runs, each exporting its slice.
    std::vector<std::string> files;
    for (unsigned shard = 0; shard < 2; ++shard) {
        ResultCache cache;
        ExperimentOptions opts = options;
        opts.cache = &cache;
        opts.shardIndex = shard;
        opts.shardCount = 2;
        runSchedulerExperiment(workload, opts);
        files.push_back(dir + "/s" + std::to_string(shard) +
                        ".bin");
        ASSERT_TRUE(cache.exportTo(files.back()));
    }

    // Merge: import both shard files, then run the full set; all
    // evaluation replays must come from the imported entries.
    ResultCache merged;
    for (const std::string &file : files)
        ASSERT_TRUE(merged.importFrom(file));
    ExperimentOptions opts = options;
    opts.cache = &merged;
    const auto combined = runSchedulerExperiment(workload, opts);
    expectIdentical(combined, reference);
    EXPECT_EQ(merged.stats().stores, 0u); // everything hit
}

TEST(CachedEngine, MemLossSampleServesBothFoldDirections)
{
    const WorkloadSet workload;
    const std::vector<unsigned> traces = {0, 97, 311};
    ResultCache cache;

    const PerfLossStats dl0_ref = measurePerfLoss(
        workload, traces, 2'000, CacheConfig(),
        CacheConfig::tlb(128, 8), MechanismKind::LineFixed50,
        true);
    const PerfLossStats dl0_cached = measurePerfLoss(
        workload, traces, 2'000, CacheConfig(),
        CacheConfig::tlb(128, 8), MechanismKind::LineFixed50,
        true, MemTimingParams(), 0.1, 1, nullptr, &cache);
    EXPECT_EQ(dl0_cached.meanLoss, dl0_ref.meanLoss);
    EXPECT_EQ(dl0_cached.meanInvertRatio, dl0_ref.meanInvertRatio);

    // Same (config, mechanism) pair folded for the DTLB must hit
    // the same entries yet report the DTLB ratio.
    const std::uint64_t stores = cache.stats().stores;
    const PerfLossStats warm = measurePerfLoss(
        workload, traces, 2'000, CacheConfig(),
        CacheConfig::tlb(128, 8), MechanismKind::LineFixed50,
        true, MemTimingParams(), 0.1, 1, nullptr, &cache);
    EXPECT_EQ(cache.stats().stores, stores);
    EXPECT_EQ(warm.meanLoss, dl0_ref.meanLoss);
}

} // namespace
} // namespace penelope
